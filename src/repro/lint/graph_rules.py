"""The whole-program greenlint rules (GL6–GL10).

These rules run over the project graph built by
:mod:`repro.lint.graph`; each module's findings are attributed back to
that module so the engine's suppression and sorting machinery applies
unchanged.

GL6
    Purity/determinism propagation.  Any function reachable from an
    experiment root — ``run_experiment``/``run_all``, a function taking
    a ``lab: Lab`` parameter, or a pipeline ``run()`` method — may not
    directly perform a wall-clock read, entropy draw, unseeded
    ``default_rng()``, or hash-order-dependent iteration.  Reachability
    follows typed receivers where possible and signature-compatible
    dynamic dispatch elsewhere, so protocol calls stay visible.
GL7
    Lock discipline.  A field declared ``# gl: guarded-by=<lock>`` must
    be written only while ``self.<lock>`` is held (constructors exempt:
    the object is not yet shared).  In classes that own a
    ``threading.Lock``, unannotated counter mutations outside any lock
    are flagged, and a declaration naming a lock the class does not own
    is inconsistent.
GL8
    Lock-order inversion.  Over the call graph, acquiring lock B while
    holding lock A — directly or transitively — establishes the order
    A→B.  Any cycle in the resulting order graph (including
    re-acquiring a non-reentrant lock while held) is a potential
    deadlock.
GL9
    Energy conservation.  A call whose result carries energy accounting
    (a ``*_j`` function, or one returning ``StagePower`` / ``IoStats``
    / ``DiskResult`` / ``RebuildReport``) must not be discarded, and a
    local assigned such a result must be folded into something — a
    dropped joule silently biases the paper's totals.
GL10
    Block-device protocol completeness.  Every class implementing the
    scalar :class:`~repro.machine.device.BlockDevice` path (``service``
    + ``submit_write``) must also implement the batched fast path
    (``service_batch``/``service_components`` and
    ``submit_write_batch``/``submit_write_components``), so a new
    device cannot silently fall back to per-op servicing or break the
    fault-injection wrapper.
"""

from __future__ import annotations

from typing import Iterator

from repro.lint.dims import ENERGY, suffix_dim
from repro.lint.engine import Finding, ModuleContext, rule
from repro.lint.graph import ClassInfo, FunctionInfo, ProjectGraph

#: Return-annotation names that mark a result as carrying accounted
#: energy or device time which must be folded into an aggregate.
ENERGY_RESULT_TYPES = frozenset({
    "StagePower", "IoStats", "DiskResult", "RebuildReport",
})

#: Scalar protocol methods and the batched counterparts they require.
PROTOCOL_PAIRS: tuple[tuple[str, str], ...] = (
    ("service", "service_batch"),
    ("service", "service_components"),
    ("submit_write", "submit_write_batch"),
    ("submit_write", "submit_write_components"),
)

#: Methods every implementer must have for GL10 to consider it a device.
_SCALAR_PROTOCOL = ("service", "submit_write")


def _graph(ctx: ModuleContext) -> ProjectGraph:
    graph = ctx.project.graph
    if graph is None:  # pragma: no cover - engine always builds one
        graph = ProjectGraph()
    return graph


def _short(qualname: str) -> str:
    """``path::Class.name`` -> ``Class.name`` for messages."""
    return qualname.rsplit("::", 1)[-1]


# ---------------------------------------------------------------------------
# GL6: purity/determinism propagation
# ---------------------------------------------------------------------------

@rule("GL6", "purity/determinism propagation", exempt_files=("rng.py",),
      scope="project")
def check_purity(ctx: ModuleContext) -> Iterator[Finding]:
    """Experiment-reachable code may not read wall clocks or entropy."""
    graph = _graph(ctx)
    reachable = graph.reachable_from_roots()
    findings: list[Finding] = []
    for qual in sorted(reachable):
        info = graph.functions.get(qual)
        if info is None or info.module != ctx.path or not info.impurities:
            continue
        chain = graph.root_path_to(qual)
        root = _short(chain[0]) if chain else _short(qual)
        via = (f" (reachable from {root}()"
               + (f" via {len(chain) - 1} call"
                  f"{'s' if len(chain) - 1 != 1 else ''})"
                  if len(chain) > 1 else ")"))
        for imp in info.impurities:
            findings.append(Finding(
                code="GL6", severity="error", path=ctx.path,
                line=imp.lineno, col=imp.col,
                message=f"{imp.reason} in {_short(qual)}{via}; experiment "
                        f"results must be pure functions of (seed, spec)"))
    return iter(findings)


# ---------------------------------------------------------------------------
# GL7: lock discipline (guarded-by)
# ---------------------------------------------------------------------------

#: Methods where unlocked writes are allowed: the instance is not yet —
#: or no longer — shared between threads.
_CONSTRUCTION_METHODS = frozenset({"__init__", "__new__", "__post_init__"})


@rule("GL7", "lock discipline", scope="project")
def check_lock_discipline(ctx: ModuleContext) -> Iterator[Finding]:
    """Guarded fields must be written only under their declared lock."""
    graph = _graph(ctx)
    findings: list[Finding] = []
    for cls in graph.iter_classes():
        if cls.module != ctx.path:
            continue
        for attr in sorted(cls.guarded):
            lock = cls.guarded[attr]
            if lock not in cls.lock_attrs:
                findings.append(Finding(
                    code="GL7", severity="error", path=ctx.path,
                    line=cls.guarded_lines.get(attr, cls.lineno), col=0,
                    message=f"{cls.name}.{attr} declares guarded-by={lock} "
                            f"but {cls.name} owns no lock attribute "
                            f"{lock!r}"))
        if not cls.guarded and not cls.lock_attrs:
            continue
        for name in sorted(cls.methods):
            if name in _CONSTRUCTION_METHODS:
                continue
            findings.extend(_method_write_findings(ctx, cls,
                                                   cls.methods[name]))
    return iter(findings)


def _method_write_findings(ctx: ModuleContext, cls: ClassInfo,
                           method: FunctionInfo) -> list[Finding]:
    findings: list[Finding] = []
    for w in method.writes:
        declared: str | None = cls.guarded.get(w.attr)
        if declared is not None:
            lock_id = f"{cls.name}.{declared}"
            if lock_id not in w.held_locks:
                what = ("mutated" if w.kind in ("mutcall", "item")
                        else "written")
                findings.append(Finding(
                    code="GL7", severity="error", path=ctx.path,
                    line=w.lineno, col=w.col,
                    message=f"self.{w.attr} is {what} in "
                            f"{cls.name}.{method.name}() without holding "
                            f"its declared lock self.{declared}"))
        elif (w.kind == "augassign" and cls.lock_attrs
                and not w.held_locks):
            findings.append(Finding(
                code="GL7", severity="error", path=ctx.path,
                line=w.lineno, col=w.col,
                message=f"unguarded mutation of self.{w.attr} in "
                        f"{cls.name}.{method.name}(); hold a lock and "
                        f"declare the field with '# gl: guarded-by=<lock>'"))
    return findings


# ---------------------------------------------------------------------------
# GL8: lock-order inversion
# ---------------------------------------------------------------------------

@rule("GL8", "lock-order inversion", scope="project")
def check_lock_order(ctx: ModuleContext) -> Iterator[Finding]:
    """Cycles in the observed lock-acquisition order are deadlocks."""
    graph = _graph(ctx)
    cycles = graph.lock_cycles()
    if not cycles:
        return iter(())
    edges = graph.lock_order_edges()
    findings: list[Finding] = []
    for cycle in cycles:
        if len(cycle) == 1:
            lock = cycle[0]
            for module, lineno, col, qual in edges[(lock, lock)]:
                if module != ctx.path:
                    continue
                findings.append(Finding(
                    code="GL8", severity="error", path=ctx.path,
                    line=lineno, col=col,
                    message=f"{_short(qual)}() may re-acquire "
                            f"non-reentrant lock {lock} while already "
                            f"holding it (self-deadlock)"))
            continue
        order = " -> ".join((*cycle, cycle[0]))
        for outer, inner in zip(cycle, (*cycle[1:], cycle[0])):
            for module, lineno, col, qual in edges.get((outer, inner), ()):
                if module != ctx.path:
                    continue
                findings.append(Finding(
                    code="GL8", severity="error", path=ctx.path,
                    line=lineno, col=col,
                    message=f"{_short(qual)}() acquires {inner} while "
                            f"holding {outer}, completing lock-order "
                            f"cycle {order}"))
    return iter(findings)


# ---------------------------------------------------------------------------
# GL9: energy conservation
# ---------------------------------------------------------------------------

def _returns_energy(info: FunctionInfo) -> bool:
    if suffix_dim(info.name) == ENERGY:
        return True
    return any(name in ENERGY_RESULT_TYPES for name in info.returns)


def _energy_callee(graph: ProjectGraph, caller: FunctionInfo,
                   name: str, site_targets: list[FunctionInfo]) -> str | None:
    """Why a call's result carries energy accounting, or None."""
    if name in ENERGY_RESULT_TYPES:
        return f"a {name}"
    if suffix_dim(name) == ENERGY:
        return f"the joule result of {name}()"
    for target in site_targets:
        if _returns_energy(target):
            kind = next((n for n in target.returns
                         if n in ENERGY_RESULT_TYPES), "a joule value")
            what = f"a {kind}" if kind in ENERGY_RESULT_TYPES else kind
            return f"{what} from {_short(target.qualname)}()"
    return None


@rule("GL9", "energy conservation", scope="project")
def check_energy_conservation(ctx: ModuleContext) -> Iterator[Finding]:
    """Energy-carrying results must flow into a roll-up, never be dropped."""
    graph = _graph(ctx)
    findings: list[Finding] = []
    for qual in sorted(graph.functions):
        info = graph.functions[qual]
        if info.module != ctx.path:
            continue
        for site in info.calls:
            if not site.discarded:
                continue
            reason = _energy_callee(graph, info, site.name,
                                    graph.resolve(info, site))
            if reason is not None:
                findings.append(Finding(
                    code="GL9", severity="error", path=ctx.path,
                    line=site.lineno, col=site.col,
                    message=f"result of {site.name}() is discarded, "
                            f"dropping {reason}; fold it into an "
                            f"aggregate or bind it explicitly"))
        for target, callee, lineno, col in info.local_assigns:
            if (callee is None or target.startswith("_")
                    or target in info.loaded_names):
                continue
            if (callee in ENERGY_RESULT_TYPES
                    or suffix_dim(callee) == ENERGY):
                findings.append(Finding(
                    code="GL9", severity="error", path=ctx.path,
                    line=lineno, col=col,
                    message=f"{target!r} holds the energy-carrying result "
                            f"of {callee}() but is never used in "
                            f"{_short(qual)}(); dropped energy"))
    return iter(findings)


# ---------------------------------------------------------------------------
# GL10: block-device protocol completeness
# ---------------------------------------------------------------------------

@rule("GL10", "block-device protocol completeness", scope="project")
def check_protocol_completeness(ctx: ModuleContext) -> Iterator[Finding]:
    """Scalar BlockDevice implementers must also serve the batched path."""
    graph = _graph(ctx)
    findings: list[Finding] = []
    for cls in graph.iter_classes():
        if cls.module != ctx.path or cls.is_protocol:
            continue
        if any(base == "Protocol" for base in cls.bases):
            continue
        if not all(graph.mro_has_method(cls, m) for m in _SCALAR_PROTOCOL):
            continue
        missing = sorted({batch for scalar, batch in PROTOCOL_PAIRS
                          if not graph.mro_has_method(cls, batch)})
        for batch in missing:
            findings.append(Finding(
                code="GL10", severity="error", path=ctx.path,
                line=cls.lineno, col=0,
                message=f"{cls.name} implements the scalar BlockDevice "
                        f"path but lacks {batch}(); devices must stay on "
                        f"the batched fast path (see machine/device.py)"))
    return iter(findings)
