"""Findings baselines: land strict rules without blocking on old debt.

A baseline is a committed JSON snapshot of known findings
(``tools/greenlint-baseline.json``).  ``repro lint --baseline FILE``
subtracts baselined findings from the run, so new rules gate *new*
violations immediately while pre-existing ones stay visible (counted,
listed in the file, reviewable) instead of blocking the rollout.

Matching is by ``(code, path, message)`` — deliberately not by line, so
unrelated edits above a baselined finding do not invalidate it.  Paths
are normalized (relative to the working directory where possible, POSIX
separators) so the same baseline works across checkouts and operating
systems.  The match is exact in multiset terms: every baseline entry
must correspond to a live finding, otherwise it is *stale* and the lint
run fails until the file is regenerated with ``--write-baseline`` —
baselines may only ever shrink by being re-recorded, never silently.
"""

from __future__ import annotations

import json
import os
from collections import Counter
from dataclasses import replace
from typing import Iterable

from repro.errors import ConfigError
from repro.lint.engine import Finding, LintResult

BASELINE_VERSION = 1

BaselineKey = tuple[str, str, str]


def normalize_path(path: str) -> str:
    """Stable cross-filesystem spelling of a finding path."""
    abspath = os.path.abspath(path)
    cwd = os.getcwd()
    if abspath == cwd or abspath.startswith(cwd + os.sep):
        abspath = os.path.relpath(abspath, cwd)
    return abspath.replace(os.sep, "/")


def finding_key(finding: Finding) -> BaselineKey:
    """The identity a baseline entry matches on."""
    return (finding.code, normalize_path(finding.path), finding.message)


def finding_records(findings: Iterable[Finding], *,
                    location: bool = True) -> list[dict]:
    """Normalized, deterministically ordered finding records.

    The single spelling shared by the JSON reporter and the baseline
    writer: paths normalized via :func:`normalize_path`, records sorted
    on the normalized path (then location, code, message) so the same
    tree serializes byte-identically on every filesystem.  With
    ``location=False`` the line/col fields are omitted — the baseline
    identity deliberately excludes them.
    """
    records = []
    for f in findings:
        rec = {"code": f.code, "path": normalize_path(f.path),
               "message": f.message}
        if location:
            rec = {"code": f.code, "severity": f.severity,
                   "path": rec["path"], "line": f.line, "col": f.col,
                   "message": f.message}
        records.append(rec)
    records.sort(key=lambda r: (r["path"], r.get("line", 0), r.get("col", 0),
                                r["code"], r["message"]))
    return records


def load_baseline(path: str) -> Counter[BaselineKey]:
    """Parse a baseline file into a multiset of finding keys."""
    try:
        with open(path, encoding="utf-8") as fh:
            doc = json.load(fh)
    except OSError as exc:
        raise ConfigError(f"cannot read baseline {path}: {exc}") from exc
    except json.JSONDecodeError as exc:
        raise ConfigError(f"baseline {path} is not valid JSON: {exc}") from exc
    if not isinstance(doc, dict) or "entries" not in doc:
        raise ConfigError(f"baseline {path} lacks an 'entries' list")
    baseline: Counter[BaselineKey] = Counter()
    for i, entry in enumerate(doc["entries"]):
        try:
            key = (str(entry["code"]), str(entry["path"]),
                   str(entry["message"]))
        except (TypeError, KeyError) as exc:
            raise ConfigError(
                f"baseline {path} entry {i} lacks code/path/message") from exc
        baseline[key] += 1
    return baseline


def write_baseline(path: str, result: LintResult) -> int:
    """Snapshot the run's findings as the new baseline; returns count."""
    entries = finding_records(result.findings, location=False)
    doc = {
        "version": BASELINE_VERSION,
        "tool": "greenlint-baseline",
        "entries": entries,
    }
    directory = os.path.dirname(path)
    if directory:
        os.makedirs(directory, exist_ok=True)
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(doc, fh, indent=2, sort_keys=False)
        fh.write("\n")
    return len(entries)


def apply_baseline(
        result: LintResult, baseline: Counter[BaselineKey],
) -> tuple[LintResult, list[BaselineKey]]:
    """Subtract baselined findings; report stale entries.

    Returns ``(new_result, stale)`` where ``new_result`` keeps only
    un-baselined findings (with ``baselined`` counting the subtracted
    ones) and ``stale`` lists baseline entries that matched nothing —
    fixed or vanished findings whose entries must be re-recorded.
    """
    remaining = Counter(baseline)
    kept: list[Finding] = []
    matched = 0
    for finding in result.findings:
        key = finding_key(finding)
        if remaining.get(key, 0) > 0:
            remaining[key] -= 1
            matched += 1
        else:
            kept.append(finding)
    stale = sorted(+remaining)
    new_result = replace(result, findings=kept,
                         baselined=result.baselined + matched)
    return new_result, stale
