"""Interprocedural dimensional dataflow: abstract interpretation on dims.

GL1 infers dimensions *inside* one module: suffixes, locals, arithmetic.
It is blind to flow through calls — a helper that returns seconds can be
assigned to ``energy_j`` three modules away and nothing notices, because
the helper's name carries no suffix.  This module closes that hole with
a whole-program abstract interpretation over the dimension lattice of
:mod:`repro.lint.dims`:

* the **abstract domain** is ``Dim | None`` (``None`` = unknown/top)
  plus finite tuples of abstract values, so tuple returns and tuple
  unpacking propagate element-wise;
* every function gets a **dimension summary** — parameters bound to
  their suffix dimensions, the body abstractly executed, the return
  dimension joined over all ``return`` statements — and summaries feed
  call sites, iterated to a fixpoint over the call graph (Jacobi style:
  each pass reads the previous pass's table, so recursion converges);
* arithmetic follows the physics exactly as GL1 does (E/T→P, E/D for
  per-byte, addition legal only between equal dimensions);
* dataclass field reads resolve through the field's quantity suffix
  (``sp.avg_total_w`` is watts wherever ``sp`` flowed from).

Every mismatch found carries a **provenance bit**: whether the
conflicting dimension was derived through a call summary or tuple
unpacking — information GL1 cannot see.  The dataflow rules (GL11/GL12)
only report *derived* mismatches, so their findings are disjoint from
GL1's by construction instead of by deduplication.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from typing import TYPE_CHECKING, Iterable, Sequence

from repro.lint.dims import (
    DIMENSIONLESS,
    Dim,
    div,
    mul,
    pow_,
    suffix_dim,
)
from repro.lint.graph import ProjectGraph

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.lint.engine import ModuleContext

#: Fixpoint safety valve; real summary chains settle in two or three
#: passes (the tree's helper depth), this only bounds pathological code.
MAX_PASSES = 8


def _known(d: Dim | None) -> bool:
    """Dims that participate in mismatch checks (GL1's convention)."""
    return d is not None and d != DIMENSIONLESS


@dataclass(frozen=True)
class AbsVal:
    """One abstract value: a dimension (or tuple) plus its provenance.

    ``derived`` is True when the dimension was obtained through
    information a single-module checker cannot see (a function summary
    or tuple unpacking across a call).
    """

    dim: Dim | None = None
    elems: tuple["AbsVal", ...] | None = None
    derived: bool = False

    def tagged(self, derived: bool) -> "AbsVal":
        if derived == self.derived:
            return self
        return AbsVal(self.dim, self.elems, derived)


UNKNOWN = AbsVal()


@dataclass(frozen=True)
class DimEvent:
    """One dimensional inconsistency witnessed during interpretation."""

    kind: str            #: binop | compare | mix | rebind | store | return
    module: str
    qualname: str
    lineno: int
    col: int
    left: Dim            #: expected/first dimension
    right: Dim           #: actual/second dimension
    detail: str          #: operator verb or target name


#: Return summary: a constant dim, a tuple of dims, or unknown.
Summary = AbsVal


class DimDataflow:
    """Whole-program dimension summaries plus the mismatches they expose.

    Construction only indexes the per-function ASTs; the fixpoint and
    the event sweep run lazily on first use, so ``--select`` runs that
    skip GL11/GL12 pay nothing.
    """

    def __init__(self, graph: ProjectGraph,
                 modules: Iterable[ModuleContext]) -> None:
        self.graph = graph
        #: qualname -> (function node, module path)
        self._nodes: dict[str, tuple[ast.AST, str]] = {}
        for ctx in modules:
            _index_functions(ctx.path, ctx.tree, self._nodes)
        self._summaries: dict[str, Summary] | None = None
        self._events: list[DimEvent] | None = None

    # -- public API ---------------------------------------------------------

    def summaries(self) -> dict[str, Summary]:
        """Fixpoint of per-function dimension summaries."""
        if self._summaries is None:
            self._run()
        return self._summaries  # type: ignore[return-value]

    def events(self) -> list[DimEvent]:
        """Every derived-dimension mismatch in the program, sorted."""
        if self._events is None:
            self._run()
        return self._events  # type: ignore[return-value]

    def summary_for_call(self, name: str) -> Summary:
        """Joined return summary over every project callable ``name``.

        Conservative: if two same-named callables disagree, the call
        resolves to unknown — a wrong summary is worse than none.
        """
        table = self.summaries()
        joined: Summary | None = None
        for info in (*self.graph.methods_by_name.get(name, ()),
                     *self.graph.funcs_by_name.get(name, ())):
            s = table.get(info.qualname, UNKNOWN)
            if joined is None:
                joined = s
            elif s != joined:
                return UNKNOWN
        return joined if joined is not None else UNKNOWN

    # -- fixpoint driver ----------------------------------------------------

    def _run(self) -> None:
        table: dict[str, Summary] = {q: UNKNOWN for q in self._nodes}
        for _ in range(MAX_PASSES):
            nxt: dict[str, Summary] = {}
            self._summaries = table  # summary_for_call reads the old pass
            for qual, (node, module) in self._nodes.items():
                interp = _Interp(self, module, qual)
                nxt[qual] = interp.summarize(node)
            if nxt == table:
                break
            table = nxt
        self._summaries = table
        # Event sweep: one more interpretation with recording on.
        events: list[DimEvent] = []
        for qual, (node, module) in self._nodes.items():
            interp = _Interp(self, module, qual, events=events)
            interp.summarize(node)
        seen: set[tuple] = set()
        unique: list[DimEvent] = []
        for e in sorted(events, key=lambda e: (
                e.module, e.lineno, e.col, e.kind, e.detail)):
            key = (e.module, e.lineno, e.col, e.kind, e.left, e.right,
                   e.detail)
            if key not in seen:
                seen.add(key)
                unique.append(e)
        self._events = unique


def _index_functions(path: str, tree: ast.Module,
                     out: dict[str, tuple[ast.AST, str]]) -> None:
    """Index functions under the same qualname scheme the graph uses."""

    class Indexer(ast.NodeVisitor):
        def __init__(self) -> None:
            self.class_stack: list[str] = []

        def visit_ClassDef(self, node: ast.ClassDef) -> None:
            self.class_stack.append(node.name)
            self.generic_visit(node)
            self.class_stack.pop()

        def _register(self, node: ast.FunctionDef | ast.AsyncFunctionDef,
                      ) -> None:
            if self.class_stack:
                qual = f"{path}::{self.class_stack[-1]}.{node.name}"
            else:
                qual = f"{path}::{node.name}"
            out[qual] = (node, path)  # last definition wins, like the graph
            self.generic_visit(node)

        visit_FunctionDef = _register  # type: ignore[assignment]
        visit_AsyncFunctionDef = _register  # type: ignore[assignment]

    Indexer().visit(tree)


# ---------------------------------------------------------------------------
# The abstract interpreter
# ---------------------------------------------------------------------------

class _Interp:
    """Abstractly execute one function body over the dimension domain."""

    def __init__(self, flow: DimDataflow, module: str, qualname: str,
                 events: list[DimEvent] | None = None) -> None:
        self.flow = flow
        self.module = module
        self.qualname = qualname
        self.events = events
        self.returns: list[AbsVal] = []
        self.ret_dim: Dim | None = None  # declared by the function's suffix

    # -- entry --------------------------------------------------------------

    def summarize(self, node: ast.AST) -> Summary:
        assert isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
        env: dict[str, AbsVal] = {}
        args = node.args
        for a in (*args.posonlyargs, *args.args, *args.kwonlyargs):
            env[a.arg] = AbsVal(suffix_dim(a.arg))
        self.ret_dim = suffix_dim(node.name)
        for stmt in node.body:
            self.exec_stmt(stmt, env)
        if self.ret_dim is not None:
            # The suffix is the declared contract; GL1 checks the body
            # against it, callers trust it.
            return AbsVal(self.ret_dim)
        return self._join(self.returns)

    @staticmethod
    def _join(values: Sequence[AbsVal]) -> AbsVal:
        known = [v for v in values if v.dim is not None or v.elems is not None]
        if not known:
            return UNKNOWN
        first = known[0]
        for v in known[1:]:
            if v.dim != first.dim or v.elems != first.elems:
                return UNKNOWN
        return first

    # -- events -------------------------------------------------------------

    def _event(self, kind: str, node: ast.AST, left: Dim, right: Dim,
               detail: str, derived: bool) -> None:
        if self.events is None or not derived:
            return
        self.events.append(DimEvent(
            kind=kind, module=self.module, qualname=self.qualname,
            lineno=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0),
            left=left, right=right, detail=detail))

    # -- expressions --------------------------------------------------------

    def eval(self, node: ast.expr | None, env: dict[str, AbsVal]) -> AbsVal:
        if node is None:
            return UNKNOWN
        if isinstance(node, ast.Constant):
            if isinstance(node.value, bool):
                return UNKNOWN
            if isinstance(node.value, (int, float)):
                return AbsVal(DIMENSIONLESS)
            return UNKNOWN
        if isinstance(node, ast.Name):
            sd = suffix_dim(node.id)
            if sd is not None:
                return AbsVal(sd)
            return env.get(node.id, UNKNOWN)
        if isinstance(node, ast.Attribute):
            self.eval(node.value, env)
            sd = suffix_dim(node.attr)
            return AbsVal(sd) if sd is not None else UNKNOWN
        if isinstance(node, ast.Subscript):
            v = self.eval(node.value, env)
            idx = self.eval(node.slice, env)
            del idx
            if (v.elems is not None and isinstance(node.slice, ast.Constant)
                    and isinstance(node.slice.value, int)
                    and -len(v.elems) <= node.slice.value < len(v.elems)):
                return v.elems[node.slice.value].tagged(
                    v.elems[node.slice.value].derived or v.derived)
            return AbsVal(v.dim, None, v.derived)
        if isinstance(node, ast.BinOp):
            return self._binop(node, env)
        if isinstance(node, ast.UnaryOp):
            v = self.eval(node.operand, env)
            return v if isinstance(node.op, (ast.USub, ast.UAdd)) else UNKNOWN
        if isinstance(node, ast.BoolOp):
            for v in node.values:
                self.eval(v, env)
            return UNKNOWN
        if isinstance(node, ast.Compare):
            return self._compare(node, env)
        if isinstance(node, ast.Call):
            return self._call(node, env)
        if isinstance(node, ast.IfExp):
            self.eval(node.test, env)
            return self._join([self.eval(node.body, env),
                               self.eval(node.orelse, env)])
        if isinstance(node, ast.Tuple):
            elems = tuple(self.eval(e, env) for e in node.elts)
            return AbsVal(None, elems)
        if isinstance(node, (ast.List, ast.Set)):
            for e in node.elts:
                self.eval(e, env)
            return UNKNOWN
        if isinstance(node, ast.Dict):
            for k in node.keys:
                if k is not None:
                    self.eval(k, env)
            for v in node.values:
                self.eval(v, env)
            return UNKNOWN
        if isinstance(node, (ast.ListComp, ast.SetComp, ast.GeneratorExp)):
            self._comprehension(node.generators, env)
            self.eval(node.elt, dict(env))
            return UNKNOWN
        if isinstance(node, ast.DictComp):
            self._comprehension(node.generators, env)
            scope = dict(env)
            self.eval(node.key, scope)
            self.eval(node.value, scope)
            return UNKNOWN
        if isinstance(node, ast.Lambda):
            return UNKNOWN
        if isinstance(node, ast.JoinedStr):
            for v in node.values:
                if isinstance(v, ast.FormattedValue):
                    self.eval(v.value, env)
            return UNKNOWN
        if isinstance(node, ast.Starred):
            return self.eval(node.value, env)
        if isinstance(node, (ast.Await, ast.YieldFrom)):
            return self.eval(node.value, env)
        if isinstance(node, ast.Yield):
            if node.value is not None:
                self.eval(node.value, env)
            return UNKNOWN
        if isinstance(node, ast.Slice):
            for part in (node.lower, node.upper, node.step):
                if part is not None:
                    self.eval(part, env)
            return UNKNOWN
        if isinstance(node, ast.NamedExpr):
            v = self.eval(node.value, env)
            self._assign(node.target, v, env)
            return v
        return UNKNOWN

    def _comprehension(self, generators: list, env: dict[str, AbsVal]) -> None:
        for gen in generators:
            self.eval(gen.iter, env)
            self._clear(gen.target, env)
            for cond in gen.ifs:
                self.eval(cond, env)

    def _binop(self, node: ast.BinOp, env: dict[str, AbsVal]) -> AbsVal:
        lv = self.eval(node.left, env)
        rv = self.eval(node.right, env)
        derived = lv.derived or rv.derived
        left, right = lv.dim, rv.dim
        op = node.op
        if isinstance(op, (ast.Add, ast.Sub)):
            if _known(left) and _known(right) and left != right:
                verb = "adding" if isinstance(op, ast.Add) else "subtracting"
                self._event("binop", node, left, right, verb, derived)
            if left is None or right is None:
                return UNKNOWN
            return AbsVal(right if left == DIMENSIONLESS else left,
                          None, derived)
        if left is None or right is None:
            if isinstance(op, ast.Pow) and left == DIMENSIONLESS:
                return AbsVal(DIMENSIONLESS, None, lv.derived)
            return UNKNOWN
        if isinstance(op, ast.Mult):
            return AbsVal(mul(left, right), None, derived)
        if isinstance(op, (ast.Div, ast.FloorDiv)):
            return AbsVal(div(left, right), None, derived)
        if isinstance(op, ast.Mod):
            return AbsVal(left, None, lv.derived)
        if isinstance(op, ast.Pow):
            if left == DIMENSIONLESS:
                return AbsVal(DIMENSIONLESS, None, lv.derived)
            if (isinstance(node.right, ast.Constant)
                    and isinstance(node.right.value, int)
                    and abs(node.right.value) <= 8):
                return AbsVal(pow_(left, node.right.value), None, lv.derived)
        return UNKNOWN

    _CHECKED_CMPOPS = (ast.Lt, ast.LtE, ast.Gt, ast.GtE, ast.Eq, ast.NotEq)

    def _compare(self, node: ast.Compare, env: dict[str, AbsVal]) -> AbsVal:
        vals = [self.eval(node.left, env)]
        vals += [self.eval(c, env) for c in node.comparators]
        for a, op, b in zip(vals, node.ops, vals[1:]):
            if (isinstance(op, self._CHECKED_CMPOPS)
                    and _known(a.dim) and _known(b.dim) and a.dim != b.dim):
                self._event("compare", node, a.dim, b.dim, "comparing",
                            a.derived or b.derived)
        return UNKNOWN

    def _call(self, node: ast.Call, env: dict[str, AbsVal]) -> AbsVal:
        func = node.func
        fname: str | None = None
        if isinstance(func, ast.Attribute):
            self.eval(func.value, env)
            fname = func.attr
        elif isinstance(func, ast.Name):
            fname = func.id
        else:
            self.eval(func, env)
        argvals = [self.eval(a, env) for a in node.args]
        for kw in node.keywords:
            self.eval(kw.value, env)
        if fname in ("abs", "float", "round"):
            return argvals[0] if argvals else UNKNOWN
        if fname in ("min", "max", "sum") and len(argvals) >= 2:
            known = [v for v in argvals if _known(v.dim)]
            for a, b in zip(known, known[1:]):
                if a.dim != b.dim:
                    self._event("mix", node, a.dim, b.dim, f"{fname}()",
                                a.derived or b.derived)
            if known:
                return known[0]
            return UNKNOWN
        if fname is None:
            return UNKNOWN
        sd = suffix_dim(fname)
        if sd is not None:
            return AbsVal(sd)
        summary = self.flow.summary_for_call(fname)
        if summary.dim is not None and summary.dim != DIMENSIONLESS:
            return AbsVal(summary.dim, None, True)
        if summary.elems is not None:
            return AbsVal(None, tuple(e.tagged(True) for e in summary.elems))
        return UNKNOWN

    # -- statements ---------------------------------------------------------

    def exec_stmt(self, stmt: ast.stmt, env: dict[str, AbsVal]) -> None:
        if isinstance(stmt, ast.Expr):
            self.eval(stmt.value, env)
        elif isinstance(stmt, ast.Assign):
            v = self.eval(stmt.value, env)
            for target in stmt.targets:
                self._assign(target, v, env)
        elif isinstance(stmt, ast.AnnAssign):
            if stmt.value is not None:
                self._assign(stmt.target, self.eval(stmt.value, env), env)
        elif isinstance(stmt, ast.AugAssign):
            tv = self.eval(_as_load(stmt.target), env)
            vv = self.eval(stmt.value, env)
            if (isinstance(stmt.op, (ast.Add, ast.Sub))
                    and _known(tv.dim) and _known(vv.dim)
                    and tv.dim != vv.dim):
                self._event("rebind", stmt, tv.dim, vv.dim, "augmenting",
                            tv.derived or vv.derived)
        elif isinstance(stmt, ast.Return):
            if stmt.value is not None:
                v = self.eval(stmt.value, env)
                self.returns.append(v)
                if (self.ret_dim is not None and _known(v.dim)
                        and v.dim != self.ret_dim):
                    self._event("return", stmt, self.ret_dim, v.dim,
                                self.qualname.rsplit("::", 1)[-1], v.derived)
        elif isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
            for dec in stmt.decorator_list:
                self.eval(dec, env)
            # The body is indexed and interpreted as its own function.
        elif isinstance(stmt, ast.ClassDef):
            for dec in stmt.decorator_list:
                self.eval(dec, env)
        elif isinstance(stmt, ast.If):
            self.eval(stmt.test, env)
            self._exec_body(stmt.body, env)
            self._exec_body(stmt.orelse, env)
        elif isinstance(stmt, ast.While):
            self.eval(stmt.test, env)
            self._exec_body(stmt.body, env)
            self._exec_body(stmt.orelse, env)
        elif isinstance(stmt, (ast.For, ast.AsyncFor)):
            self.eval(stmt.iter, env)
            self._clear(stmt.target, env)
            self._exec_body(stmt.body, env)
            self._exec_body(stmt.orelse, env)
        elif isinstance(stmt, (ast.With, ast.AsyncWith)):
            for item in stmt.items:
                self.eval(item.context_expr, env)
                if item.optional_vars is not None:
                    self._clear(item.optional_vars, env)
            self._exec_body(stmt.body, env)
        elif isinstance(stmt, ast.Try):
            self._exec_body(stmt.body, env)
            for handler in stmt.handlers:
                if handler.type is not None:
                    self.eval(handler.type, env)
                self._exec_body(handler.body, env)
            self._exec_body(stmt.orelse, env)
            self._exec_body(stmt.finalbody, env)
        elif isinstance(stmt, ast.Raise):
            if stmt.exc is not None:
                self.eval(stmt.exc, env)
            if stmt.cause is not None:
                self.eval(stmt.cause, env)
        elif isinstance(stmt, ast.Assert):
            self.eval(stmt.test, env)
            if stmt.msg is not None:
                self.eval(stmt.msg, env)
        elif isinstance(stmt, ast.Delete):
            for target in stmt.targets:
                if isinstance(target, ast.Name):
                    env.pop(target.id, None)
        elif isinstance(stmt, ast.Match):
            self.eval(stmt.subject, env)
            for case in stmt.cases:
                if case.guard is not None:
                    self.eval(case.guard, env)
                self._exec_body(case.body, env)

    def _exec_body(self, body: list, env: dict[str, AbsVal]) -> None:
        for stmt in body:
            self.exec_stmt(stmt, env)

    # -- assignment targets -------------------------------------------------

    def _assign(self, target: ast.expr, v: AbsVal,
                env: dict[str, AbsVal]) -> None:
        if isinstance(target, ast.Name):
            declared = suffix_dim(target.id)
            if declared is not None:
                if _known(v.dim) and v.dim != declared:
                    self._event("rebind", target, declared, v.dim,
                                target.id, v.derived)
                env[target.id] = AbsVal(declared)
            else:
                env[target.id] = v
        elif isinstance(target, ast.Attribute):
            self.eval(target.value, env)
            declared = suffix_dim(target.attr)
            if declared is not None and _known(v.dim) and v.dim != declared:
                self._event("rebind", target, declared, v.dim,
                            target.attr, v.derived)
        elif isinstance(target, ast.Subscript):
            container = self.eval(target.value, env)
            self.eval(target.slice, env)
            if (_known(container.dim) and _known(v.dim)
                    and container.dim != v.dim):
                self._event("store", target, container.dim, v.dim, "storing",
                            container.derived or v.derived)
        elif isinstance(target, (ast.Tuple, ast.List)):
            if v.elems is not None and len(v.elems) == len(target.elts):
                for elt, ev in zip(target.elts, v.elems):
                    self._assign(elt, ev.tagged(ev.derived or v.derived), env)
            else:
                for elt in target.elts:
                    self._clear(elt, env)
        elif isinstance(target, ast.Starred):
            self._clear(target.value, env)

    def _clear(self, target: ast.expr, env: dict[str, AbsVal]) -> None:
        self._assign(target, UNKNOWN, env)


def _as_load(target: ast.expr) -> ast.expr:
    """A Store-context node reinterpreted for reading (x += e reads x)."""
    clone = ast.copy_location(
        ast.parse(ast.unparse(target), mode="eval").body, target)
    return clone
