"""Lifecycle rules GL15–GL18: resources, escapes, retries, cache keys.

All four are project-scope rules over :class:`~repro.lint.effects.
EffectAnalysis`, the resource/effect summary layer on the call graph.
The analysis computes each product once per run and memoizes it; the
rules here only filter the per-module slice so the engine's usual
per-module suppression handling (``# greenlint: ignore[GL15]``) applies.

* **GL15** — every acquired resource (socket, client, server, executor,
  thread, process, temp file) must be released, handed off (returned,
  stored on an owner, passed to a callee), or managed by ``with`` — on
  every path, including exception paths.  Classes that end up owning a
  resource must release it from one of their own methods.
* **GL16** — only :class:`~repro.errors.ReproError` subclasses may
  escape a worker entry point (a ``do_*`` HTTP handler or a thread
  target): anything else kills the worker instead of producing a 5xx.
* **GL17** — code re-executed by a ``RetryPolicy``/``RetrySession``
  loop must not carry at-most-once mutations (``+=`` bumps, container
  pushes) unless annotated ``# gl: idempotent``; stale annotations are
  flagged in reverse so the convention stays honest.
* **GL18** — experiment-reachable code may not read ambient state (env
  vars, mutated module globals, shared mutable class attrs) that the
  sha256 ``cache_key``/``lab_snapshot_key`` never digests: such reads
  make cached results silently stale.
"""

from __future__ import annotations

from typing import Iterator

from repro.lint.effects import EffectAnalysis
from repro.lint.engine import Finding, ModuleContext, rule


def _effects(ctx: ModuleContext) -> EffectAnalysis | None:
    return ctx.project.effects


@rule("GL15", "resource lifecycle typestate", scope="project")
def check_resource_lifecycle(ctx: ModuleContext) -> Iterator[Finding]:
    """Acquired resources must be released, escaped, or with-managed."""
    eff = _effects(ctx)
    if eff is None:
        return
    for issue in eff.resource_issues():
        if issue.module == ctx.path:
            yield Finding(code="GL15", severity="error", path=ctx.path,
                          line=issue.line, col=issue.col,
                          message=issue.message)


@rule("GL16", "worker exception containment", scope="project")
def check_exception_flow(ctx: ModuleContext) -> Iterator[Finding]:
    """Only ReproError may escape HTTP handlers and thread targets."""
    eff = _effects(ctx)
    if eff is None:
        return
    for issue in eff.escape_issues():
        if issue.module == ctx.path:
            yield Finding(code="GL16", severity="error", path=ctx.path,
                          line=issue.line, col=issue.col,
                          message=issue.message)


@rule("GL17", "retry idempotence", scope="project")
def check_retry_safety(ctx: ModuleContext) -> Iterator[Finding]:
    """Retried code must be idempotent or annotated '# gl: idempotent'."""
    eff = _effects(ctx)
    if eff is None:
        return
    for issue in eff.retry_issues():
        if issue.module == ctx.path:
            yield Finding(code="GL17", severity="error", path=ctx.path,
                          line=issue.line, col=issue.col,
                          message=issue.message)


@rule("GL18", "cache-key soundness", scope="project")
def check_cache_key_soundness(ctx: ModuleContext) -> Iterator[Finding]:
    """Cached computations may not read state cache_key never digests."""
    eff = _effects(ctx)
    if eff is None:
        return
    for issue in eff.ambient_issues():
        if issue.module == ctx.path:
            yield Finding(code="GL18", severity="error", path=ctx.path,
                          line=issue.line, col=issue.col,
                          message=issue.message)
