"""Greenlint's core: findings, the rule registry, and the lint driver.

The engine parses every target file once, builds project-wide tables
(callable signatures for GL5, the ``ReproError`` class hierarchy for
GL3), then runs each registered rule over each module.  Suppressions are
line-scoped comments::

    x = legacy_flags < (1 << 16)   # greenlint: ignore[GL2]
    y = whatever()                 # greenlint: ignore

and a file can opt out entirely with ``# greenlint: skip-file`` in its
first ten lines.  Suppressions are counted, not silently dropped, so the
reporter can surface how many findings a tree is carrying.
"""

from __future__ import annotations

import ast
import os
import re
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable, Iterable, Iterator, Sequence

from repro.errors import ConfigError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.lint.dataflow import DimDataflow
    from repro.lint.effects import EffectAnalysis
    from repro.lint.graph import ProjectGraph

SEVERITIES = ("error", "warning")

#: Rule scopes: ``file`` rules are pure functions of one module's source
#: (cacheable per file); ``project`` rules read whole-program state (the
#: call graph, the dataflow fixpoint) and always run fresh.
SCOPES = ("file", "project")

_IGNORE_RE = re.compile(
    r"#\s*greenlint:\s*ignore(?:\[(?P<codes>[A-Za-z0-9_,\s]+)\])?"
)
_SKIP_FILE_RE = re.compile(r"#\s*greenlint:\s*skip-file")


@dataclass(frozen=True)
class Finding:
    """One rule violation at one source location."""

    code: str
    severity: str
    path: str
    line: int
    col: int
    message: str

    def sort_key(self) -> tuple:
        return (self.path, self.line, self.col, self.code, self.message)

    def format(self) -> str:
        """Render as the canonical ``path:line:col CODE message`` line."""
        return f"{self.path}:{self.line}:{self.col} {self.code} {self.message}"


@dataclass(frozen=True)
class Rule:
    """A registered greenlint rule."""

    code: str
    name: str
    severity: str
    description: str
    check: Callable[[ModuleContext], Iterable[Finding]]
    #: Base filenames this rule never applies to (e.g. ``units.py`` is
    #: allowed to define the very constants GL2 bans elsewhere).
    exempt_files: tuple[str, ...] = ()
    #: ``file`` (per-module, cacheable) or ``project`` (whole-program).
    scope: str = "file"


#: Registry of rules by code, populated by the :func:`rule` decorator.
RULES: dict[str, Rule] = {}


def rule(code: str, name: str, severity: str = "error",
         exempt_files: Sequence[str] = (), scope: str = "file") -> Callable:
    """Class/function decorator registering a greenlint rule checker."""
    if severity not in SEVERITIES:
        raise ConfigError(f"unknown severity {severity!r}")
    if scope not in SCOPES:
        raise ConfigError(f"unknown rule scope {scope!r}")

    def register(check: Callable[[ModuleContext], Iterable[Finding]],
                 ) -> Callable[[ModuleContext], Iterable[Finding]]:
        if code in RULES:
            raise ConfigError(f"duplicate rule code {code}")
        RULES[code] = Rule(
            code=code,
            name=name,
            severity=severity,
            description=(check.__doc__ or "").strip().splitlines()[0]
            if check.__doc__ else name,
            check=check,
            exempt_files=tuple(exempt_files),
            scope=scope,
        )
        return check

    return register


# ---------------------------------------------------------------------------
# Contexts
# ---------------------------------------------------------------------------

@dataclass
class CallableSig:
    """Positional parameter names of a project function/constructor."""

    params: tuple[str, ...]
    has_vararg: bool = False


@dataclass
class ProjectContext:
    """Cross-file knowledge shared by all rules.

    ``signatures`` maps a simple callable name (function, method, or
    class constructor) to every distinct signature seen under that name;
    rules only act when the name resolves unambiguously.
    ``error_classes`` holds every class transitively derived from
    ``ReproError`` anywhere in the linted tree.  ``graph`` is the
    whole-program call graph the cross-module rules (GL6–GL10) query;
    the driver builds it once over every parsed module.  ``dataflow``
    is the interprocedural dimension analysis (GL11/GL12) layered on
    the graph; its fixpoint runs lazily on first query.  ``effects``
    is the resource/effect summary layer (GL15–GL18), equally lazy.
    """

    signatures: dict[str, list[CallableSig]] = field(default_factory=dict)
    error_classes: set[str] = field(default_factory=set)
    graph: ProjectGraph | None = None
    dataflow: DimDataflow | None = None
    effects: EffectAnalysis | None = None

    def add_signature(self, name: str, sig: CallableSig) -> None:
        sigs = self.signatures.setdefault(name, [])
        if all(sig.params != s.params for s in sigs):
            sigs.append(sig)

    def unique_signature(self, name: str) -> CallableSig | None:
        sigs = self.signatures.get(name)
        if sigs and len(sigs) == 1:
            return sigs[0]
        return None


@dataclass
class ModuleContext:
    """One parsed module, ready for rule checks."""

    path: str
    source: str
    tree: ast.Module
    project: ProjectContext

    @property
    def basename(self) -> str:
        return os.path.basename(self.path)


# ---------------------------------------------------------------------------
# Project-table construction
# ---------------------------------------------------------------------------

def _params_of(fn: ast.FunctionDef | ast.AsyncFunctionDef,
               drop_self: bool) -> CallableSig:
    args = fn.args
    names = [a.arg for a in (*args.posonlyargs, *args.args)]
    if drop_self and names and names[0] in ("self", "cls"):
        names = names[1:]
    return CallableSig(tuple(names), has_vararg=args.vararg is not None)


def _collect_signatures(tree: ast.Module, project: ProjectContext) -> None:
    class Collector(ast.NodeVisitor):
        def __init__(self) -> None:
            self.class_depth = 0

        def visit_ClassDef(self, node: ast.ClassDef) -> None:
            init = next(
                (n for n in node.body
                 if isinstance(n, (ast.FunctionDef, ast.AsyncFunctionDef))
                 and n.name == "__init__"),
                None,
            )
            if init is not None:
                project.add_signature(node.name, _params_of(init, drop_self=True))
            else:
                # Dataclass-style: ordered class-level annotated fields
                # become constructor parameters.
                fields = tuple(
                    n.target.id for n in node.body
                    if isinstance(n, ast.AnnAssign)
                    and isinstance(n.target, ast.Name)
                    and not (isinstance(n.annotation, ast.Name)
                             and n.annotation.id == "ClassVar")
                )
                if fields:
                    project.add_signature(node.name, CallableSig(fields))
            self.class_depth += 1
            self.generic_visit(node)
            self.class_depth -= 1

        def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
            project.add_signature(
                node.name, _params_of(node, drop_self=self.class_depth > 0))
            self.generic_visit(node)

        visit_AsyncFunctionDef = visit_FunctionDef  # type: ignore[assignment]

    Collector().visit(tree)


def _collect_error_classes(trees: Iterable[ast.Module],
                           project: ProjectContext) -> None:
    bases: dict[str, set[str]] = {}
    for tree in trees:
        for node in ast.walk(tree):
            if isinstance(node, ast.ClassDef):
                names = set()
                for b in node.bases:
                    if isinstance(b, ast.Name):
                        names.add(b.id)
                    elif isinstance(b, ast.Attribute):
                        names.add(b.attr)
                bases.setdefault(node.name, set()).update(names)
    known = {"ReproError"}
    changed = True
    while changed:
        changed = False
        for cls, parents in bases.items():
            if cls not in known and parents & known:
                known.add(cls)
                changed = True
    project.error_classes = known


# ---------------------------------------------------------------------------
# Suppressions
# ---------------------------------------------------------------------------

def _suppressions(source: str) -> dict[int, frozenset[str] | None]:
    """Map 1-based line number -> suppressed codes (None = all codes)."""
    out: dict[int, frozenset[str] | None] = {}
    for lineno, line in enumerate(source.splitlines(), start=1):
        m = _IGNORE_RE.search(line)
        if not m:
            continue
        codes = m.group("codes")
        if codes is None:
            out[lineno] = None
        else:
            out[lineno] = frozenset(
                c.strip().upper() for c in codes.split(",") if c.strip())
    return out


def _is_skip_file(source: str) -> bool:
    head = source.splitlines()[:10]
    return any(_SKIP_FILE_RE.search(line) for line in head)


# ---------------------------------------------------------------------------
# Driver
# ---------------------------------------------------------------------------

@dataclass
class LintResult:
    """Outcome of one lint run."""

    findings: list[Finding]
    files_checked: int
    suppressed: int
    #: Findings matched (and subtracted) by an accepted baseline file.
    baselined: int = 0
    #: Incremental-cache accounting; both stay 0 when caching is off.
    cache_hits: int = 0
    cache_misses: int = 0

    def counts(self) -> dict[str, int]:
        out: dict[str, int] = {}
        for f in self.findings:
            out[f.code] = out.get(f.code, 0) + 1
        return dict(sorted(out.items()))

    def errors(self) -> list[Finding]:
        return [f for f in self.findings if f.severity == "error"]

    def warnings(self) -> list[Finding]:
        return [f for f in self.findings if f.severity == "warning"]


def iter_py_files(paths: Sequence[str]) -> Iterator[str]:
    """Yield every ``.py`` file under the given files/directories."""
    for path in paths:
        if os.path.isfile(path):
            yield path
        elif os.path.isdir(path):
            for dirpath, dirnames, filenames in os.walk(path):
                dirnames[:] = sorted(
                    d for d in dirnames
                    if d not in ("__pycache__", ".git"))
                for fn in sorted(filenames):
                    if fn.endswith(".py"):
                        yield os.path.join(dirpath, fn)
        else:
            raise ConfigError(f"no such file or directory: {path}")


def _select_rules(select: Sequence[str] | None) -> list[Rule]:
    # Import the rule implementations on first use so the registry is
    # populated regardless of which entry point loaded this module.
    from repro.lint import dataflow_rules as _dataflow_rules  # noqa: F401
    from repro.lint import graph_rules as _graph_rules  # noqa: F401
    from repro.lint import lifecycle_rules as _lifecycle_rules  # noqa: F401
    from repro.lint import rules as _rules  # noqa: F401

    if select is None:
        return [RULES[c] for c in sorted(RULES)]
    picked = []
    for code in select:
        code = code.strip().upper()
        if code not in RULES:
            raise ConfigError(
                f"unknown rule code {code!r}; have {sorted(RULES)}")
        picked.append(RULES[code])
    return picked


def _lint_module(ctx: ModuleContext, rules: Sequence[Rule]) -> tuple[list[Finding], int]:
    raw: list[Finding] = []
    for r in rules:
        if ctx.basename in r.exempt_files:
            continue
        raw.extend(r.check(ctx))
    suppress = _suppressions(ctx.source)
    kept: list[Finding] = []
    suppressed = 0
    for f in raw:
        codes = suppress.get(f.line, "missing")
        if codes == "missing":
            kept.append(f)
        elif codes is None or f.code in codes:
            suppressed += 1
        else:
            kept.append(f)
    return kept, suppressed


def lint_source(source: str, path: str = "<string>",
                select: Sequence[str] | None = None,
                project: ProjectContext | None = None) -> LintResult:
    """Lint a single source string (the unit-test entry point)."""
    rules = _select_rules(select)
    try:
        tree = ast.parse(source)
    except SyntaxError as exc:
        finding = Finding(
            code="GL0", severity="error", path=path,
            line=exc.lineno or 1, col=exc.offset or 0,
            message=f"syntax error: {exc.msg}")
        return LintResult([finding], files_checked=1, suppressed=0)
    if _is_skip_file(source):
        return LintResult([], files_checked=1, suppressed=0)
    ctx = ModuleContext(path=path, source=source, tree=tree,
                        project=project if project is not None
                        else ProjectContext())
    if project is None:
        _collect_signatures(tree, ctx.project)
        _collect_error_classes([tree], ctx.project)
    if ctx.project.graph is None:
        from repro.lint.graph import ProjectGraph

        ctx.project.graph = ProjectGraph.build([ctx])
    if ctx.project.dataflow is None:
        from repro.lint.dataflow import DimDataflow

        ctx.project.dataflow = DimDataflow(ctx.project.graph, [ctx])
    if ctx.project.effects is None:
        from repro.lint.effects import EffectAnalysis

        ctx.project.effects = EffectAnalysis(
            ctx.project.graph, [ctx],
            error_classes=ctx.project.error_classes)
    findings, suppressed = _lint_module(ctx, rules)
    findings.sort(key=Finding.sort_key)
    return LintResult(findings, files_checked=1, suppressed=suppressed)


def lint_paths(paths: Sequence[str],
               select: Sequence[str] | None = None,
               cache_dir: str | None = None) -> LintResult:
    """Lint every Python file under ``paths`` with project-wide context.

    With ``cache_dir`` set, per-file work (the file-scope rules and the
    module's graph summary) is reused from an on-disk cache keyed by
    file content; project-scope rules always run fresh over the merged
    summaries.
    """
    rules = _select_rules(select)
    file_rules = [r for r in rules if r.scope == "file"]
    project_rules = [r for r in rules if r.scope == "project"]
    modules: list[ModuleContext] = []
    findings: list[Finding] = []
    project = ProjectContext()
    files_checked = 0
    for path in iter_py_files(paths):
        files_checked += 1
        try:
            with open(path, encoding="utf-8") as fh:
                source = fh.read()
        except OSError as exc:
            raise ConfigError(f"cannot read {path}: {exc}") from exc
        try:
            tree = ast.parse(source, filename=path)
        except SyntaxError as exc:
            findings.append(Finding(
                code="GL0", severity="error", path=path,
                line=exc.lineno or 1, col=exc.offset or 0,
                message=f"syntax error: {exc.msg}"))
            continue
        if _is_skip_file(source):
            continue
        modules.append(ModuleContext(
            path=path, source=source, tree=tree, project=project))
    for ctx in modules:
        _collect_signatures(ctx.tree, project)
    _collect_error_classes((m.tree for m in modules), project)
    from repro.lint.dataflow import DimDataflow
    from repro.lint.graph import ModuleSummary, ProjectGraph, summarize_module

    cache = None
    if cache_dir is not None:
        from repro.lint.cache import LintCache

        cache = LintCache(cache_dir, salt=_cache_salt(file_rules, project))

    # Per-file phase: file-scope rules plus the module's graph summary,
    # served from the cache when the content is unchanged.
    suppressed = 0
    cache_hits = 0
    cache_misses = 0
    summaries: list[ModuleSummary] = []
    for ctx in modules:
        entry = cache.load(ctx.path, ctx.source) if cache is not None else None
        if entry is not None:
            cache_hits += 1
            findings.extend(entry.findings)
            suppressed += entry.suppressed
            summaries.append(entry.summary)
            continue
        kept, n_suppressed = _lint_module(ctx, file_rules)
        summary = summarize_module(ctx.path, ctx.source, ctx.tree)
        findings.extend(kept)
        suppressed += n_suppressed
        summaries.append(summary)
        if cache is not None:
            cache_misses += 1
            from repro.lint.cache import CacheEntry

            cache.store(ctx.path, ctx.source, CacheEntry(
                findings=kept, suppressed=n_suppressed, summary=summary))

    # Whole-program phase: merge summaries, layer the dataflow analysis
    # on top, and run the project-scope rules fresh.
    project.graph = ProjectGraph.from_summaries(summaries)
    project.dataflow = DimDataflow(project.graph, modules)
    from repro.lint.effects import EffectAnalysis

    project.effects = EffectAnalysis(project.graph, modules,
                                     error_classes=project.error_classes)
    for ctx in modules:
        kept, n_suppressed = _lint_module(ctx, project_rules)
        findings.extend(kept)
        suppressed += n_suppressed
    findings.sort(key=Finding.sort_key)
    return LintResult(findings, files_checked=files_checked,
                      suppressed=suppressed,
                      cache_hits=cache_hits, cache_misses=cache_misses)


def _cache_salt(file_rules: Sequence[Rule], project: ProjectContext) -> str:
    """Everything beyond file content a cached entry depends on.

    File-scope rules read the project tables (GL5 signatures, GL3 error
    classes), so those digests are part of the key: a new overload in
    *any* file conservatively invalidates every entry.  The lint
    package's own sources are hashed too, so editing a rule never
    serves stale findings.
    """
    import hashlib

    h = hashlib.sha256()
    for r in file_rules:
        h.update(f"rule:{r.code}\n".encode())
    for name in sorted(project.signatures):
        for sig in project.signatures[name]:
            h.update(f"sig:{name}:{','.join(sig.params)}"
                     f":{int(sig.has_vararg)}\n".encode())
    for name in sorted(project.error_classes):
        h.update(f"err:{name}\n".encode())
    pkg_dir = os.path.dirname(__file__)
    for fn in sorted(os.listdir(pkg_dir)):
        if fn.endswith(".py"):
            with open(os.path.join(pkg_dir, fn), "rb") as fh:
                h.update(fn.encode() + b"\0" + fh.read())
    return h.hexdigest()
