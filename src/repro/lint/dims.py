"""Quantity-dimension algebra behind greenlint's unit inference (GL1).

Every quantity-suffixed name in :mod:`repro` is modeled as a vector of
integer exponents over three base dimensions:

* **T** — time (``_s``, ``_hz`` is T^-1)
* **E** — energy (``_j``; ``_w`` is E·T^-1)
* **D** — data (``_bytes``)

The suffix grammar mirrors the conventions enforced by
:mod:`repro.units` (base-SI internals, display-only scaling):

* simple suffixes: ``energy_j``, ``idle_w``, ``duration_s``,
  ``chunk_bytes``, ``sample_hz``
* rate forms: ``dram_bytes_per_s`` (D·T^-1), ``write_j_per_b`` (E·D^-1)
* per-unit-then-base forms: ``read_energy_per_byte_j`` (E·D^-1),
  chaining freely: ``energy_per_byte_per_s_j`` (E·D^-1·T^-1)

Scale prefixes share a dimension (``system_kj`` is still energy);
greenlint checks *dimensions*, not scales — mixing kJ and J is a display
concern handled by the ``fmt_*`` helpers, whereas mixing J and W is a
physics bug.

Dimensionless values (numeric literals) combine freely: ``t_s + 1.0``
is fine, ``t_s + e_j`` is not.
"""

from __future__ import annotations

from typing import Tuple

#: A dimension: exponents of (time, energy, data).
Dim = Tuple[int, int, int]

DIMENSIONLESS: Dim = (0, 0, 0)
TIME: Dim = (1, 0, 0)
ENERGY: Dim = (0, 1, 0)
DATA: Dim = (0, 0, 1)
POWER: Dim = (-1, 1, 0)
FREQUENCY: Dim = (-1, 0, 0)
DATA_RATE: Dim = (-1, 0, 1)
ENERGY_PER_BYTE: Dim = (0, 1, -1)

#: Name tokens that denote a base quantity.  Deliberately conservative:
#: single letters that double as loop variables (``j``, ``s``, ``b``,
#: ``w``) are only recognized as the *final* token after an underscore,
#: never as a whole name (see :func:`suffix_dim`).
UNIT_TOKENS: dict[str, Dim] = {
    # time
    "s": TIME,
    "ms": TIME,
    "us": TIME,
    "ns": TIME,
    "sec": TIME,
    "seconds": TIME,
    # frequency
    "hz": FREQUENCY,
    "khz": FREQUENCY,
    "mhz": FREQUENCY,
    "ghz": FREQUENCY,
    # energy
    "j": ENERGY,
    "kj": ENERGY,
    "mj": ENERGY,
    # power
    "w": POWER,
    "kw": POWER,
    "mw": POWER,
    # data
    "b": DATA,
    "byte": DATA,
    "bytes": DATA,
    "kb": DATA,
    "mb": DATA,
    "gb": DATA,
    "tb": DATA,
    "kib": DATA,
    "mib": DATA,
    "gib": DATA,
    "tib": DATA,
}

#: Pretty names for common dimensions, used in diagnostics.
_DIM_NAMES: dict[Dim, str] = {
    DIMENSIONLESS: "dimensionless",
    TIME: "seconds",
    ENERGY: "joules",
    DATA: "bytes",
    POWER: "watts",
    FREQUENCY: "hertz",
    DATA_RATE: "bytes/s",
    ENERGY_PER_BYTE: "J/byte",
    (2, 0, 0): "s^2",
    (0, 2, 0): "J^2",
    (0, 0, 2): "bytes^2",
    (-1, 0, 0): "hertz",
    (0, -1, 1): "bytes/J",
    (1, 0, -1): "s/byte",
}


def mul(a: Dim, b: Dim) -> Dim:
    """Dimension of a product."""
    return (a[0] + b[0], a[1] + b[1], a[2] + b[2])


def div(a: Dim, b: Dim) -> Dim:
    """Dimension of a quotient."""
    return (a[0] - b[0], a[1] - b[1], a[2] - b[2])


def pow_(a: Dim, n: int) -> Dim:
    """Dimension of an integer power."""
    return (a[0] * n, a[1] * n, a[2] * n)


def dim_name(d: Dim) -> str:
    """Human-readable name of a dimension for diagnostics."""
    if d in _DIM_NAMES:
        return _DIM_NAMES[d]
    parts = []
    for label, exp in zip(("T", "E", "D"), d):
        if exp:
            parts.append(label if exp == 1 else f"{label}^{exp}")
    return "*".join(parts) if parts else "dimensionless"


def suffix_dim(name: str) -> Dim | None:
    """Infer the dimension a name's quantity suffix declares, if any.

    Returns ``None`` for names that carry no recognized suffix (which
    greenlint treats as *unknown*, exempt from checking — never as
    dimensionless).

    >>> suffix_dim("energy_j") == ENERGY
    True
    >>> suffix_dim("dram_bytes_per_s") == DATA_RATE
    True
    >>> suffix_dim("read_energy_per_byte_j") == ENERGY_PER_BYTE
    True
    >>> suffix_dim("energy_per_byte_per_s_j") == (-1, 1, -1)
    True
    >>> suffix_dim("j") is None          # bare loop variable, not joules
    True
    >>> suffix_dim("accesses_per_s") is None   # unknown numerator
    True
    """
    tokens = [t for t in name.lower().split("_") if t]
    # Require an actual suffix: at least one token before the unit, so
    # bare single-letter names (loop counters) are never unitized.
    if len(tokens) < 2:
        return None
    last = tokens[-1]
    if last not in UNIT_TOKENS:
        return None
    dim = UNIT_TOKENS[last]
    rest = tokens[:-1]
    if len(rest) >= 2 and rest[-1] == "per":
        # ``X_per_<unit>``: a rate.  Only meaningful when the numerator
        # is itself a unit token (``bytes_per_s``); ``accesses_per_s``
        # has an unknown numerator and stays unknown.
        if rest[-2] in UNIT_TOKENS:
            return div(UNIT_TOKENS[rest[-2]], dim)
        return None
    # ``X(_per_<unit>)+_<base>``: the spelled-out per-unit idiom, e.g.
    # ``read_energy_per_byte_j`` = joules per byte.  ``per`` groups
    # chain: ``energy_per_byte_per_s_j`` = joules per byte per second.
    while len(rest) >= 2 and rest[-1] in UNIT_TOKENS and rest[-2] == "per":
        dim = div(dim, UNIT_TOKENS[rest[-1]])
        rest = rest[:-2]
    return dim
