"""The dataflow-powered greenlint rules (GL11–GL14).

Where GL1–GL5 check what one expression shows and GL6–GL10 check what
the call graph shows, these rules consume the two semantic analyses
layered on top of the graph:

GL11
    Interprocedural unit mismatch.  The abstract interpreter in
    :mod:`repro.lint.dataflow` propagates dimensions through
    assignments, tuple unpacking, and function-return summaries; any
    arithmetic or comparison that mixes dimensions *somewhere along a
    flow* — a joules helper result added to a seconds local two calls
    later — is flagged, even though no single expression names both
    units.  Only mismatches involving a derived dimension (one that
    arrived through a call summary or tuple unpack) are reported here,
    so GL11 findings are disjoint from GL1's by construction.
GL12
    Dimension-changing assignment.  A ``_j`` name rebound to a
    time- or data-dimensioned expression (including through helper
    returns), a suffixed function returning a different dimension than
    it declares, or a mismatched augmented assignment.  Same
    derived-only discipline as GL11.
GL13
    Static energy conservation.  A function that sums components of an
    accounting record (:class:`IoStats` busy-time parts,
    :class:`DiskResult` service-time parts, :class:`StagePower`
    dynamic/static split) must account every component: a sum reading
    two of four parts silently drops accounted time or energy from the
    paper's totals.  Reading the record's own total field instead, or
    handling the remaining components elsewhere in the function, both
    count as accounting.
GL14
    Static race detection (Eraser-style lockset analysis).  Thread
    entry roots are enumerated structurally — ``do_*`` HTTP handler
    methods plus every callable handed to ``submit``/``Thread``/
    ``Timer``/``initializer`` — and for each root the set of locks
    *always* held is propagated along call edges (set-intersection
    meet).  An instance attribute written from two or more roots whose
    write locksets share no common lock is a data race, whether or not
    the field carries a ``# gl: guarded-by`` annotation; this subsumes
    GL7's annotation-only heuristic.  Classes constructed *inside*
    thread-root code are exempt: each thread builds its own instance,
    so the attribute is thread-confined.
"""

from __future__ import annotations

import ast
import re
from typing import Iterator

from repro.lint.dataflow import DimDataflow, DimEvent
from repro.lint.dims import dim_name
from repro.lint.engine import Finding, ModuleContext, rule
from repro.lint.graph import FunctionInfo, ProjectGraph, _outer_annotation_name
from repro.lint.graph_rules import _CONSTRUCTION_METHODS, _graph, _short

# ---------------------------------------------------------------------------
# GL11 / GL12: interprocedural dimension checks
# ---------------------------------------------------------------------------

_GL11_KINDS = frozenset({"binop", "compare", "mix"})
_GL12_KINDS = frozenset({"rebind", "return", "store"})


def _flow(ctx: ModuleContext) -> DimDataflow | None:
    return ctx.project.dataflow


def _gl11_message(e: DimEvent) -> str:
    fn = _short(e.qualname)
    if e.kind == "mix":
        return (f"{e.detail} mixes {dim_name(e.left)} with "
                f"{dim_name(e.right)} in {fn}(); the operands reached "
                f"here through calls a per-file check cannot see")
    verb = "compares" if e.kind == "compare" else e.detail
    return (f"{verb} {dim_name(e.left)} and {dim_name(e.right)} in {fn}(); "
            f"mixed dimensions flowed here through a call or unpacking")


@rule("GL11", "interprocedural unit mismatch", scope="project")
def check_flow_units(ctx: ModuleContext) -> Iterator[Finding]:
    """Arithmetic/comparison mixing dimensions anywhere along a flow."""
    flow = _flow(ctx)
    if flow is None:
        return iter(())
    return iter(Finding(
        code="GL11", severity="error", path=ctx.path,
        line=e.lineno, col=e.col, message=_gl11_message(e))
        for e in flow.events()
        if e.module == ctx.path and e.kind in _GL11_KINDS)


def _gl12_message(e: DimEvent) -> str:
    fn = _short(e.qualname)
    if e.kind == "return":
        return (f"{e.detail}() declares {dim_name(e.left)} by suffix but "
                f"returns {dim_name(e.right)} derived through a call")
    if e.kind == "store":
        return (f"stores {dim_name(e.right)} into a container holding "
                f"{dim_name(e.left)} in {fn}(); the value's dimension "
                f"flowed through a call")
    if e.detail == "augmenting":
        return (f"augmented assignment shifts {dim_name(e.left)} by "
                f"{dim_name(e.right)} in {fn}(); the operand's dimension "
                f"flowed through a call")
    return (f"{e.detail!r} declares {dim_name(e.left)} but is rebound to a "
            f"{dim_name(e.right)} value in {fn}(); dimension-changing "
            f"assignment through a helper return")


@rule("GL12", "dimension-changing assignment", scope="project")
def check_dim_rebind(ctx: ModuleContext) -> Iterator[Finding]:
    """A suffixed name must never be rebound to another dimension."""
    flow = _flow(ctx)
    if flow is None:
        return iter(())
    return iter(Finding(
        code="GL12", severity="error", path=ctx.path,
        line=e.lineno, col=e.col, message=_gl12_message(e))
        for e in flow.events()
        if e.module == ctx.path and e.kind in _GL12_KINDS)


# ---------------------------------------------------------------------------
# GL13: static energy conservation over component sums
# ---------------------------------------------------------------------------

#: Accounting records whose component fields must sum completely:
#: (owner class, component fields, the precomputed total field).
_COMPONENT_GROUPS: tuple[tuple[str, tuple[str, ...], str], ...] = (
    ("IoStats",
     ("arm_time", "rotation_time", "transfer_time", "fault_time"),
     "busy_time"),
    ("DiskResult",
     ("arm_time", "rotation_time", "transfer_time"),
     "service_time"),
    ("StagePower", ("avg_dynamic_w", "static_w"), "avg_total_w"),
)

_GROUP_BY_OWNER = {owner: (frozenset(parts), total)
                   for owner, parts, total in _COMPONENT_GROUPS}


class _SumScanner:
    """Find partial component sums in one function body."""

    def __init__(self, graph: ProjectGraph, module: str,
                 fn: ast.FunctionDef | ast.AsyncFunctionDef,
                 cls_name: str | None) -> None:
        self.graph = graph
        self.module = module
        self.fn = fn
        self.cls_name = cls_name
        #: local/param name -> class name, flow-insensitive.
        self.types: dict[str, str] = {}
        #: receiver source text -> every attribute read on it in the body.
        self.reads: dict[str, set[str]] = {}
        self._collect()

    def _collect(self) -> None:
        args = self.fn.args
        for a in (*args.posonlyargs, *args.args, *args.kwonlyargs):
            name = _outer_annotation_name(a.annotation)
            if name is not None:
                self.types[a.arg] = name
        for node in ast.walk(self.fn):
            if isinstance(node, ast.Assign) and isinstance(node.value,
                                                           ast.Call):
                func = node.value.func
                ctor = func.attr if isinstance(func, ast.Attribute) else (
                    func.id if isinstance(func, ast.Name) else None)
                if ctor is not None and ctor[:1].isupper():
                    for target in node.targets:
                        if isinstance(target, ast.Name):
                            self.types[target.id] = ctor
            elif isinstance(node, ast.Attribute):
                recv = ast.unparse(node.value)
                self.reads.setdefault(recv, set()).add(node.attr)

    def _receiver_type(self, expr: ast.expr) -> str | None:
        if isinstance(expr, ast.Name):
            return self.types.get(expr.id)
        if (isinstance(expr, ast.Attribute)
                and isinstance(expr.value, ast.Name)
                and expr.value.id == "self" and self.cls_name is not None):
            for cls in self.graph.classes.get(self.cls_name, ()):
                if cls.module == self.module:
                    typed = cls.attr_types.get(expr.attr)
                    if typed is not None:
                        return typed
        return None

    def findings(self) -> Iterator[tuple[int, int, str]]:
        """(line, col, message) per partial component sum."""
        for chain in self._add_chains():
            yield from self._check_chain(chain)

    def _add_chains(self) -> Iterator[ast.BinOp]:
        """Maximal ``a + b + c`` chains (outermost Add per chain)."""
        inner: set[int] = set()
        for node in ast.walk(self.fn):
            if isinstance(node, ast.BinOp) and isinstance(node.op, ast.Add):
                for child in (node.left, node.right):
                    if (isinstance(child, ast.BinOp)
                            and isinstance(child.op, ast.Add)):
                        inner.add(id(child))
        for node in ast.walk(self.fn):
            if (isinstance(node, ast.BinOp) and isinstance(node.op, ast.Add)
                    and id(node) not in inner):
                yield node

    @staticmethod
    def _terms(chain: ast.BinOp) -> Iterator[ast.expr]:
        stack: list[ast.expr] = [chain]
        while stack:
            node = stack.pop()
            if isinstance(node, ast.BinOp) and isinstance(node.op, ast.Add):
                stack.extend((node.right, node.left))
            else:
                yield node

    def _check_chain(self, chain: ast.BinOp,
                     ) -> Iterator[tuple[int, int, str]]:
        #: (receiver text, owner) -> component fields summed in this chain.
        summed: dict[tuple[str, str], set[str]] = {}
        for term in self._terms(chain):
            if not isinstance(term, ast.Attribute):
                continue
            owner = self._receiver_type(term.value)
            if owner not in _GROUP_BY_OWNER:
                continue
            parts, _total = _GROUP_BY_OWNER[owner]
            if term.attr in parts:
                recv = ast.unparse(term.value)
                summed.setdefault((recv, owner), set()).add(term.attr)
        for (recv, owner), fields in sorted(summed.items()):
            if len(fields) < 2:
                continue
            parts, total = _GROUP_BY_OWNER[owner]
            missing = parts - fields
            elsewhere = self.reads.get(recv, set())
            if not missing or total in elsewhere or missing <= elsewhere:
                continue
            name = (f"{self.cls_name}.{self.fn.name}" if self.cls_name
                    else self.fn.name)
            yield (chain.lineno, chain.col_offset,
                   f"{name}() sums {len(fields)} of {len(parts)} {owner} "
                   f"components ({' + '.join(sorted(fields))}) on {recv} "
                   f"but never accounts {', '.join(sorted(missing))}; "
                   f"partial sums drop accounted time/energy (read "
                   f"{total} or include every component)")


@rule("GL13", "static energy conservation", scope="project")
def check_component_sums(ctx: ModuleContext) -> Iterator[Finding]:
    """Component sums over accounting records must be complete."""
    graph = _graph(ctx)
    findings: list[Finding] = []

    class Walker(ast.NodeVisitor):
        def __init__(self) -> None:
            self.class_stack: list[str] = []

        def visit_ClassDef(self, node: ast.ClassDef) -> None:
            self.class_stack.append(node.name)
            self.generic_visit(node)
            self.class_stack.pop()

        def _function(self, node: ast.FunctionDef | ast.AsyncFunctionDef,
                      ) -> None:
            cls = self.class_stack[-1] if self.class_stack else None
            scanner = _SumScanner(graph, ctx.path, node, cls)
            for line, col, message in scanner.findings():
                findings.append(Finding(
                    code="GL13", severity="error", path=ctx.path,
                    line=line, col=col, message=message))
            self.generic_visit(node)

        visit_FunctionDef = _function  # type: ignore[assignment]
        visit_AsyncFunctionDef = _function  # type: ignore[assignment]

    Walker().visit(ctx.tree)
    return iter(findings)


# ---------------------------------------------------------------------------
# GL14: static race detection
# ---------------------------------------------------------------------------

#: HTTP handler entry points: the server invokes these per request on a
#: per-connection thread.
_HTTP_HANDLER_RE = re.compile(r"^do_[A-Z]+$")


def _thread_roots(graph: ProjectGraph) -> dict[str, str]:
    """Thread entry points: qualname -> human label."""
    roots: dict[str, str] = {}
    for qual, f in sorted(graph.functions.items()):
        if f.cls is not None and _HTTP_HANDLER_RE.match(f.name):
            roots[qual] = _short(qual)
    for qual in sorted(graph.functions):
        f = graph.functions[qual]
        for kind, name, _lineno in f.thread_targets:
            for target in _resolve_thread_target(graph, f, kind, name):
                roots.setdefault(target.qualname, _short(target.qualname))
    return roots


def _resolve_thread_target(graph: ProjectGraph, f: FunctionInfo, kind: str,
                           name: str) -> list[FunctionInfo]:
    if kind == "self" and f.cls is not None:
        out = []
        for cls in graph.classes.get(f.cls, ()):
            if cls.module != f.module:
                continue
            m = graph.class_method(cls, name)
            if m is not None:
                out.append(m)
        return out
    local = graph.module_funcs.get((f.module, name))
    if local is not None:
        return [local]
    funcs = graph.funcs_by_name.get(name, ())
    return list(funcs) if len(funcs) == 1 else []


def _always_held(graph: ProjectGraph,
                 root: str) -> dict[str, frozenset[str]]:
    """Locks guaranteed held when each function runs under ``root``.

    Meet-over-paths with set intersection: a lock counts only if *every*
    call path from the root to the function holds it.  Locksets only
    shrink, so the worklist terminates.

    Reachability here follows only confidently-resolved edges: typed
    receivers (including protocol dispatch) and bare names.  The
    signature-compatible fallback GL6 uses for untyped receivers is too
    coarse for race reports — ``self.rfile.read(n)`` on a handler must
    not count as a thread reaching every project ``read()``.
    """
    held: dict[str, frozenset[str]] = {root: frozenset()}
    work = [root]
    while work:
        qual = work.pop()
        f = graph.functions.get(qual)
        if f is None:
            continue
        base = held[qual]
        for site in f.calls:
            if site.is_attr and site.recv_type is None:
                continue
            entering = base | frozenset(site.held_locks)
            for target in graph.resolve(f, site):
                cur = held.get(target.qualname)
                new = entering if cur is None else (cur & entering)
                if cur is None or new != cur:
                    held[target.qualname] = new
                    work.append(target.qualname)
    return held


def _thread_local_classes(graph: ProjectGraph,
                          reach: set[str]) -> set[tuple[str, str]]:
    """(class, module) pairs constructed inside thread-root code.

    Each thread builds its own instance (engine workers each construct
    their own ``Lab``), so writes to those attributes are
    thread-confined, not shared.
    """
    exempt: set[tuple[str, str]] = set()
    ctors: set[str] = set()
    for qual in reach:
        f = graph.functions.get(qual)
        if f is None:
            continue
        if f.name == "__init__" and f.cls is not None:
            exempt.add((f.cls, f.module))
        for site in f.calls:
            # ``BlockQueue(...)`` anywhere thread-reachable — bare, or
            # assigned onto self — constructs a per-thread instance.
            if site.name[:1].isupper() and site.name in graph.classes:
                ctors.add(site.name)
    for name in ctors:
        for cls in graph.classes.get(name, ()):
            exempt.add((cls.name, cls.module))
    return exempt


def _race_table(graph: ProjectGraph,
                ) -> list[tuple[str, int, int, str, str, list[str]]]:
    """Memoized whole-program races: (module, line, col, cls, attr, roots)."""
    cached = getattr(graph, "_gl14_races", None)
    if cached is not None:
        return cached
    roots = _thread_roots(graph)
    held_by_root = {q: _always_held(graph, q) for q in roots}
    reach: set[str] = set()
    for table in held_by_root.values():
        reach.update(table)
    exempt = _thread_local_classes(graph, reach)
    #: (cls, module, attr) -> [(root label, lockset, write)]
    accesses: dict[tuple[str, str, str], list] = {}
    for qual in sorted(graph.functions):
        f = graph.functions[qual]
        if (f.cls is None or not f.writes
                or f.name in _CONSTRUCTION_METHODS):
            continue
        lock_attrs: set[str] = set()
        for cls in graph.classes.get(f.cls, ()):
            if cls.module == f.module:
                lock_attrs |= cls.lock_attrs
        for w in f.writes:
            if w.attr in lock_attrs or "lock" in w.attr.lower():
                continue
            for root_qual, label in roots.items():
                held = held_by_root[root_qual].get(qual)
                if held is None:
                    continue
                accesses.setdefault((f.cls, f.module, w.attr), []).append(
                    (label, held | frozenset(w.held_locks), w))
    races: list[tuple[str, int, int, str, str, list[str]]] = []
    for (cls_name, module, attr), acc in sorted(accesses.items()):
        if (cls_name, module) in exempt:
            continue
        labels = sorted({label for label, _lockset, _w in acc})
        if len(labels) < 2:
            continue
        common = frozenset.intersection(
            *(lockset for _label, lockset, _w in acc))
        if common:
            continue
        w0 = min((w for _label, _lockset, w in acc),
                 key=lambda w: (w.lineno, w.col))
        races.append((module, w0.lineno, w0.col, cls_name, attr, labels))
    graph._gl14_races = races  # type: ignore[attr-defined]
    return races


@rule("GL14", "static race detection", scope="project")
def check_races(ctx: ModuleContext) -> Iterator[Finding]:
    """Shared writes from ≥2 thread roots need a common lock."""
    graph = _graph(ctx)
    findings: list[Finding] = []
    for module, line, col, cls_name, attr, labels in _race_table(graph):
        if module != ctx.path:
            continue
        root_list = ", ".join(f"{r}()" for r in labels)
        findings.append(Finding(
            code="GL14", severity="error", path=ctx.path,
            line=line, col=col,
            message=f"{cls_name}.{attr} is written from {len(labels)} "
                    f"thread roots ({root_list}) with no common lock; "
                    f"hold one lock around every write or confine the "
                    f"field to a single thread"))
    return iter(findings)
