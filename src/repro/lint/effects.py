"""Resource/effect summaries layered on the call graph (GL15–GL18).

Where :mod:`repro.lint.graph` answers *who calls whom*, this module
answers *what a call does to the world*: which exceptions can escape a
function, which resources it acquires and fails to release, which of
its writes a retry loop would double-apply, and which ambient state a
cached computation reads without digesting it into its cache key.

:class:`EffectAnalysis` follows the :class:`~repro.lint.dataflow.DimDataflow`
idiom — constructed eagerly by the engine with ``(graph, modules)``,
computing everything lazily on first query, so runs that select none of
GL15–GL18 pay nothing.  Four lazily-memoized products back the four
lifecycle rules:

* **resource findings (GL15)** — an intraprocedural typestate automaton
  (OPEN → RELEASED / ESCAPED) per function over a table of must-release
  acquisitions, plus a class-level ownership check: a class whose
  methods store acquired resources on ``self`` must release them from
  some method of its own (its teardown).  Escape — via ``return``, an
  attribute/container store, or passing as a call argument — transfers
  the close obligation to the new owner.
* **exception escapes (GL16)** — a raises-set fixpoint over the call
  graph with lexical try/except narrowing and a builtin + project
  exception hierarchy; queried for the worker roots (``do_*`` HTTP
  handlers and thread targets).
* **retry findings (GL17)** — loops driven by ``RetryPolicy``/
  ``RetrySession`` (a ``backoff_s``/``charge_s`` call or a
  ``max_attempts`` bound) re-execute their bodies; anything they reach
  must be free of at-most-once mutations (counter bumps, container
  pushes) or carry a ``# gl: idempotent`` annotation, whose honesty is
  checked in reverse.
* **ambient findings (GL18)** — reads of environment variables, mutated
  module-level containers, and mutated mutable class attributes on the
  experiment-reachable (cached-compute) path, outside the digest scope
  of ``cache_key``/``lab_snapshot_key``.

Only confidently-resolved call edges (typed receivers, protocol
dispatch, bare names) propagate facts — the same discipline GL14 uses —
so an untyped ``obj.read()`` never smears effects across every project
``read``.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Iterable, Sequence

from repro.lint.dataflow import _index_functions
from repro.lint.graph import CallSite, FunctionInfo, ProjectGraph

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.lint.engine import ModuleContext

#: ``# gl: idempotent`` — declares a function safe to re-execute under a
#: retry loop even though it mutates state (e.g. per-attempt counters).
_IDEMPOTENT_RE = re.compile(r"#\s*gl:\s*idempotent\b")

#: Direct markers of a retry-driven loop body.
_RETRY_MARKERS = frozenset({"backoff_s", "charge_s"})

#: Constructors/factories whose result must eventually be released.
#: Values are the resource kind used in messages.
_RESOURCE_CTORS = {
    "socket": "socket",
    "create_connection": "socket",
    "HTTPConnection": "connection",
    "HTTPSConnection": "connection",
    "ServiceClient": "client",
    "ExperimentService": "service",
    "ThreadPoolExecutor": "executor",
    "ProcessPoolExecutor": "executor",
    "Thread": "thread",
    "Timer": "thread",
    "Process": "process",
    "Popen": "process",
    "open": "file",
    "NamedTemporaryFile": "file",
    "TemporaryFile": "file",
    "TemporaryDirectory": "tempdir",
    "HTTPServer": "server",
    "ThreadingHTTPServer": "server",
}

#: A ``Pipe()`` call acquires *two* connections via tuple unpacking.
_PAIR_CTORS = {"Pipe": "pipe"}

#: Method names that discharge a resource's release obligation.
_RELEASE_METHODS = frozenset({
    "close", "shutdown", "join", "stop", "release", "server_close",
    "cleanup", "terminate", "kill", "cancel", "detach", "wait",
    "communicate", "__exit__",
})

#: Base classes that make a project class a resource in its own right.
_RESOURCE_BASES = frozenset({
    "HTTPServer", "ThreadingHTTPServer", "BaseServer", "TCPServer",
})

#: Escapes that can never carry a root-killing exception in practice.
_EXEMPT_ESCAPES = frozenset({
    "KeyboardInterrupt", "SystemExit", "GeneratorExit", "StopIteration",
})

#: Builtin exception hierarchy (child -> parent), enough for narrowing.
_BUILTIN_EXC_PARENT = {
    "ArithmeticError": "Exception",
    "ZeroDivisionError": "ArithmeticError",
    "OverflowError": "ArithmeticError",
    "FloatingPointError": "ArithmeticError",
    "AssertionError": "Exception",
    "AttributeError": "Exception",
    "BufferError": "Exception",
    "EOFError": "Exception",
    "ImportError": "Exception",
    "ModuleNotFoundError": "ImportError",
    "LookupError": "Exception",
    "IndexError": "LookupError",
    "KeyError": "LookupError",
    "MemoryError": "Exception",
    "NameError": "Exception",
    "UnboundLocalError": "NameError",
    "OSError": "Exception",
    "IOError": "OSError",
    "EnvironmentError": "OSError",
    "ConnectionError": "OSError",
    "BrokenPipeError": "ConnectionError",
    "ConnectionAbortedError": "ConnectionError",
    "ConnectionRefusedError": "ConnectionError",
    "ConnectionResetError": "ConnectionError",
    "FileExistsError": "OSError",
    "FileNotFoundError": "OSError",
    "InterruptedError": "OSError",
    "IsADirectoryError": "OSError",
    "NotADirectoryError": "OSError",
    "PermissionError": "OSError",
    "TimeoutError": "OSError",
    "ReferenceError": "Exception",
    "RuntimeError": "Exception",
    "NotImplementedError": "RuntimeError",
    "RecursionError": "RuntimeError",
    "StopIteration": "Exception",
    "StopAsyncIteration": "Exception",
    "SyntaxError": "Exception",
    "IndentationError": "SyntaxError",
    "TabError": "IndentationError",
    "SystemError": "Exception",
    "TypeError": "Exception",
    "ValueError": "Exception",
    "UnicodeError": "ValueError",
    "UnicodeDecodeError": "UnicodeError",
    "UnicodeEncodeError": "UnicodeError",
    "Exception": "BaseException",
    "KeyboardInterrupt": "BaseException",
    "SystemExit": "BaseException",
    "GeneratorExit": "BaseException",
}

#: Mutation kinds retries double-apply.  A plain or keyed assignment of
#: a deterministic value is last-write-wins and therefore re-execution
#: safe; ``+=`` and container pushes are not.
_SUSPECT_WRITE_KINDS = frozenset({"augassign", "mutcall"})

#: Builtin container constructors whose module-level instances are
#: mutable ambient state for GL18.
_MUTABLE_CTORS = frozenset({
    "dict", "list", "set", "defaultdict", "deque", "OrderedDict",
    "Counter",
})

#: Method names that mutate a module-level instance (GL18).  Superset of
#: the graph's ``_MUTATOR_METHODS``: project memo types use ``put``.
_GL18_MUTATORS = frozenset({
    "append", "appendleft", "add", "clear", "discard", "extend", "insert",
    "move_to_end", "pop", "popitem", "remove", "setdefault", "update",
    "put", "store", "record", "push", "cache",
})

#: Functions whose bodies *are* the cache key derivation: ambient reads
#: here land in the digest, which is the whole point.
_DIGEST_FUNCS = frozenset({"cache_key", "lab_snapshot_key",
                           "_testbed_repr"})

_MAX_PASSES = 50


# ---------------------------------------------------------------------------
# Finding payloads (plain data; lifecycle_rules turns them into Findings)
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class ResourceIssue:
    """One GL15 leak or missing-teardown witness."""

    module: str
    line: int
    col: int
    message: str


@dataclass(frozen=True)
class EscapeIssue:
    """One GL16 non-ReproError escape from a worker root."""

    module: str
    line: int
    col: int
    message: str


@dataclass(frozen=True)
class RetryIssue:
    """One GL17 at-most-once mutation under retry (or stale annotation)."""

    module: str
    line: int
    col: int
    message: str


@dataclass(frozen=True)
class AmbientIssue:
    """One GL18 undigested ambient-state read on the cached path."""

    module: str
    line: int
    col: int
    message: str


# ---------------------------------------------------------------------------
# Per-function fact collection
# ---------------------------------------------------------------------------

@dataclass
class _FnEffects:
    """Lexical facts about one function body (no propagation yet)."""

    #: (exception name, caught frames active at the raise, line, col)
    raises: list[tuple[str, tuple[frozenset[str], ...], int, int]] = field(
        default_factory=list)
    #: (line, col) of a call -> caught frames active at that call.
    call_caught: dict[tuple[int, int], tuple[frozenset[str], ...]] = field(
        default_factory=dict)
    env_reads: list[tuple[int, int]] = field(default_factory=list)
    #: name -> first (line, col) it is read at.
    name_reads: dict[str, tuple[int, int]] = field(default_factory=dict)
    #: ``self.<attr>`` loads anywhere in the body.
    self_attr_reads: set[str] = field(default_factory=set)
    #: (receiver name, method) for every ``name.method(...)`` call.
    recv_calls: set[tuple[str, str]] = field(default_factory=set)
    #: names rebound under a ``global`` declaration, plus subscript
    #: stores through a bare name (``G[k] = v``).
    global_writes: set[str] = field(default_factory=set)
    #: (header line, body end line) of each retry-marker loop.
    retry_loops: list[tuple[int, int]] = field(default_factory=list)
    #: loops that bound themselves with ``max_attempts`` but carry no
    #: lexical backoff call; resolved against callee markers later.
    candidate_loops: list[tuple[int, int]] = field(default_factory=list)
    has_retry_marker: bool = False


def _exc_names(node: ast.expr | None) -> frozenset[str]:
    """Exception class names an ``except`` clause catches."""
    if node is None:
        return frozenset({"BaseException"})
    if isinstance(node, ast.Tuple):
        out: set[str] = set()
        for elt in node.elts:
            out |= _exc_names(elt)
        return frozenset(out)
    if isinstance(node, ast.Name):
        return frozenset({node.id})
    if isinstance(node, ast.Attribute):
        return frozenset({node.attr})
    return frozenset()


def _call_name(node: ast.Call) -> str | None:
    if isinstance(node.func, ast.Name):
        return node.func.id
    if isinstance(node.func, ast.Attribute):
        return node.func.attr
    return None


class _EffectVisitor(ast.NodeVisitor):
    """Walk one function body collecting :class:`_FnEffects`."""

    def __init__(self) -> None:
        self.out = _FnEffects()
        self._caught: list[frozenset[str]] = []
        #: (handler exception names, bound variable name) innermost-last.
        self._handlers: list[tuple[frozenset[str], str | None]] = []
        self._globals: set[str] = set()

    def run(self, fn: ast.FunctionDef | ast.AsyncFunctionDef) -> _FnEffects:
        for stmt in fn.body:
            self.visit(stmt)
        return self.out

    # Nested callables are indexed and walked on their own.
    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        pass

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        pass

    def visit_Lambda(self, node: ast.Lambda) -> None:
        pass

    # -- exception lexicality ----------------------------------------------

    def visit_Try(self, node: ast.Try) -> None:
        union: set[str] = set()
        for handler in node.handlers:
            union |= _exc_names(handler.type)
        self._caught.append(frozenset(union))
        for stmt in node.body:
            self.visit(stmt)
        self._caught.pop()
        for handler in node.handlers:
            self._handlers.append((_exc_names(handler.type), handler.name))
            for stmt in handler.body:
                self.visit(stmt)
            self._handlers.pop()
        for stmt in (*node.orelse, *node.finalbody):
            self.visit(stmt)

    visit_TryStar = visit_Try  # type: ignore[assignment]

    def _raised_names(self, exc: ast.expr | None) -> frozenset[str]:
        if exc is None:
            # Bare re-raise: whatever the innermost handler caught.
            if self._handlers:
                return self._handlers[-1][0]
            return frozenset()
        if isinstance(exc, ast.Call):
            name = _call_name(exc)
            return frozenset({name}) if name else frozenset()
        if isinstance(exc, ast.Name):
            if (self._handlers and exc.id == self._handlers[-1][1]):
                return self._handlers[-1][0]
            # A dynamically-bound exception object: class unknown, and
            # guessing "Exception" here would flag every re-raise
            # helper, so stay silent.
            return frozenset()
        if isinstance(exc, ast.Attribute):
            return frozenset({exc.attr})
        return frozenset()

    def visit_Raise(self, node: ast.Raise) -> None:
        frames = tuple(self._caught)
        for name in sorted(self._raised_names(node.exc)):
            self.out.raises.append((name, frames, node.lineno,
                                    node.col_offset))
        self.generic_visit(node)

    def visit_Assert(self, node: ast.Assert) -> None:
        self.out.raises.append(("AssertionError", tuple(self._caught),
                                node.lineno, node.col_offset))
        self.generic_visit(node)

    # -- calls, reads, writes ----------------------------------------------

    def visit_Call(self, node: ast.Call) -> None:
        if self._caught:
            self.out.call_caught[(node.lineno, node.col_offset)] = tuple(
                self._caught)
        name = _call_name(node)
        if name in _RETRY_MARKERS:
            self.out.has_retry_marker = True
        if name == "getenv":
            self.out.env_reads.append((node.lineno, node.col_offset))
        if (isinstance(node.func, ast.Attribute)
                and isinstance(node.func.value, ast.Name)):
            self.out.recv_calls.add((node.func.value.id, node.func.attr))
        self.generic_visit(node)

    def visit_Attribute(self, node: ast.Attribute) -> None:
        if node.attr == "environ":
            self.out.env_reads.append((node.lineno, node.col_offset))
        if (isinstance(node.value, ast.Name) and node.value.id == "self"
                and isinstance(node.ctx, ast.Load)):
            self.out.self_attr_reads.add(node.attr)
        self.generic_visit(node)

    def visit_Name(self, node: ast.Name) -> None:
        if isinstance(node.ctx, ast.Load):
            self.out.name_reads.setdefault(
                node.id, (node.lineno, node.col_offset))
        elif node.id in self._globals:
            self.out.global_writes.add(node.id)

    def visit_Global(self, node: ast.Global) -> None:
        self._globals.update(node.names)

    def visit_Subscript(self, node: ast.Subscript) -> None:
        if (isinstance(node.ctx, (ast.Store, ast.Del))
                and isinstance(node.value, ast.Name)):
            self.out.global_writes.add(node.value.id)
        self.generic_visit(node)

    # -- retry loops --------------------------------------------------------

    def _loop(self, node: ast.For | ast.While, bound: ast.expr) -> None:
        end = getattr(node, "end_lineno", node.lineno) or node.lineno
        span = (node.lineno, end)
        direct = any(
            isinstance(sub, ast.Call) and _call_name(sub) in _RETRY_MARKERS
            for sub in ast.walk(node))
        bounded = any(
            (isinstance(sub, ast.Attribute) and sub.attr == "max_attempts")
            or (isinstance(sub, ast.Name) and sub.id == "max_attempts")
            for sub in ast.walk(bound))
        if direct or bounded:
            self.out.retry_loops.append(span)
        else:
            self.out.candidate_loops.append(span)
        self.generic_visit(node)

    def visit_For(self, node: ast.For) -> None:
        self._loop(node, node.iter)

    def visit_While(self, node: ast.While) -> None:
        self._loop(node, node.test)


# ---------------------------------------------------------------------------
# GL15 typestate walker
# ---------------------------------------------------------------------------

_OPEN, _RELEASED, _ESCAPED = "open", "released", "escaped"


@dataclass
class _Res:
    """Typestate of one locally-acquired resource."""

    var: str
    kind: str
    line: int
    state: str = _OPEN
    protected: bool = False      #: release guaranteed by finally / handler
    risky: bool = False          #: a may-raise stmt ran while open
    reported: bool = False

    def copy(self) -> "_Res":
        return _Res(self.var, self.kind, self.line, self.state,
                    self.protected, self.risky, self.reported)


class _Typestate:
    """Intraprocedural OPEN/RELEASED/ESCAPED automaton for one function."""

    def __init__(self, analysis: "EffectAnalysis", info: FunctionInfo,
                 fn: ast.FunctionDef | ast.AsyncFunctionDef) -> None:
        self.analysis = analysis
        self.info = info
        self.fn = fn
        self.issues: list[ResourceIssue] = []
        #: ``self.<attr>`` ownerships recorded while walking.
        self.owned: dict[str, tuple[str, int]] = {}
        self._sites = {(s.lineno, s.col): s for s in info.calls}

    # -- acquisition classification ----------------------------------------

    def _acq_kind(self, node: ast.expr) -> str | None:
        """Resource kind acquired by this expression, if any."""
        if not isinstance(node, ast.Call):
            return None
        name = _call_name(node)
        if name is None:
            return None
        if name in ("Thread", "Timer"):
            # Fire-and-forget daemon threads carry no join obligation.
            for kw in node.keywords:
                if (kw.arg == "daemon" and isinstance(kw.value, ast.Constant)
                        and kw.value.value is True):
                    return None
        kind = _RESOURCE_CTORS.get(name)
        if kind is not None:
            return kind
        if name in self.analysis._resource_classes():
            return self.analysis._resource_classes()[name]
        site = self._sites.get((node.lineno, node.col_offset))
        if site is not None:
            return self.analysis._returner_kind(self.info, site)
        return None

    def _report(self, res: _Res, line: int, why: str) -> None:
        if res.reported:
            return
        res.reported = True
        self.issues.append(ResourceIssue(
            module=self.info.module, line=line, col=0,
            message=f"{res.kind} '{res.var}' acquired at line {res.line} "
                    f"{why}"))

    # -- driver -------------------------------------------------------------

    def run(self) -> None:
        state, terminated = self._block(self.fn.body, {})
        if not terminated:
            for res in state.values():
                if res.state == _OPEN and not res.protected:
                    self._report(res, res.line,
                                 "is never released or handed off "
                                 "(close/stop/join it, or use 'with')")

    def _block(self, stmts: Sequence[ast.stmt],
               state: dict[str, _Res]) -> tuple[dict[str, _Res], bool]:
        for stmt in stmts:
            terminated = self._stmt(stmt, state)
            if terminated:
                return state, True
        return state, False

    @staticmethod
    def _copy(state: dict[str, _Res]) -> dict[str, _Res]:
        return {k: v.copy() for k, v in state.items()}

    @staticmethod
    def _merge(a: dict[str, _Res], b: dict[str, _Res]) -> dict[str, _Res]:
        """May-release join: a release on either branch discharges."""
        out = dict(a)
        for var, res in b.items():
            mine = out.get(var)
            if mine is None:
                out[var] = res
            elif mine.state == _OPEN and res.state != _OPEN:
                out[var] = res
            elif mine.state == _OPEN and res.state == _OPEN:
                mine.risky = mine.risky or res.risky
                mine.protected = mine.protected and res.protected
                mine.reported = mine.reported or res.reported
        return out

    # -- statement dispatch -------------------------------------------------

    def _stmt(self, stmt: ast.stmt, state: dict[str, _Res]) -> bool:
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef,
                             ast.ClassDef, ast.Import, ast.ImportFrom,
                             ast.Global, ast.Nonlocal, ast.Pass)):
            return False
        if isinstance(stmt, ast.Assign):
            self._assign(stmt, state)
        elif isinstance(stmt, ast.Return):
            self._returns(stmt, state)
            return True
        elif isinstance(stmt, ast.Raise):
            self._escape_names(stmt, state)
            self._scan_calls(stmt, state)
            for res in state.values():
                if res.state == _OPEN and not res.protected:
                    self._report(res, stmt.lineno,
                                 f"leaks when line {stmt.lineno} raises; "
                                 "release it before raising or in a finally")
            return True
        elif isinstance(stmt, ast.If):
            self._scan_calls_expr(stmt.test, state)
            self._risky(stmt.test, state)
            s1, t1 = self._block(stmt.body, self._copy(state))
            s2, t2 = self._block(stmt.orelse, self._copy(state))
            merged = (s2 if t1 else s1 if t2 else self._merge(s1, s2))
            state.clear()
            state.update(merged)
            return t1 and t2
        elif isinstance(stmt, (ast.For, ast.AsyncFor)):
            self._scan_calls_expr(stmt.iter, state)
            self._risky(stmt.iter, state)
            body_state, _ = self._block(stmt.body, self._copy(state))
            merged = self._merge(state, body_state)
            state.clear()
            state.update(merged)
            self._block(stmt.orelse, state)
        elif isinstance(stmt, ast.While):
            self._scan_calls_expr(stmt.test, state)
            self._risky(stmt.test, state)
            body_state, _ = self._block(stmt.body, self._copy(state))
            merged = self._merge(state, body_state)
            state.clear()
            state.update(merged)
            self._block(stmt.orelse, state)
        elif isinstance(stmt, (ast.With, ast.AsyncWith)):
            self._with(stmt, state)
        elif isinstance(stmt, ast.Try):
            return self._try(stmt, state)
        else:
            self._scan_calls(stmt, state)
            self._risky(stmt, state)
        return False

    # -- assignment ---------------------------------------------------------

    def _assign(self, stmt: ast.Assign, state: dict[str, _Res]) -> None:
        value = stmt.value
        target = stmt.targets[0] if len(stmt.targets) == 1 else None
        # self.attr = <acquisition> records class ownership directly.
        kind = self._acq_kind(value)
        if (kind is not None and isinstance(target, ast.Attribute)
                and isinstance(target.value, ast.Name)
                and target.value.id == "self"):
            self.owned.setdefault(target.attr, (kind, stmt.lineno))
            self._scan_calls(stmt, state)
            self._risky(stmt, state, exclude=None)
            return
        if kind is not None and isinstance(target, ast.Name):
            prior = state.get(target.id)
            if prior is not None and prior.state == _OPEN:
                self._report(prior, stmt.lineno,
                             f"is overwritten at line {stmt.lineno} while "
                             "still open")
            state[target.id] = _Res(target.id, kind, stmt.lineno)
            # Arguments of the acquisition may hand off *other* resources.
            self._scan_calls(stmt, state, skip=value)
            self._risky(stmt, state, exclude=target.id)
            return
        pair = (isinstance(value, ast.Call)
                and _call_name(value) in _PAIR_CTORS
                and isinstance(target, ast.Tuple)
                and all(isinstance(e, ast.Name) for e in target.elts))
        if pair:
            for elt in target.elts:
                assert isinstance(elt, ast.Name)
                state[elt.id] = _Res(elt.id, _PAIR_CTORS[_call_name(value)],
                                     stmt.lineno)
            self._risky(stmt, state, exclude=frozenset(
                e.id for e in target.elts if isinstance(e, ast.Name)))
            return
        # Aliasing or storing a tracked resource moves its obligation.
        if isinstance(value, ast.Name) and value.id in state:
            res = state[value.id]
            if res.state == _OPEN:
                res.state = _ESCAPED
                if (isinstance(target, ast.Attribute)
                        and isinstance(target.value, ast.Name)
                        and target.value.id == "self"):
                    self.owned.setdefault(target.attr,
                                          (res.kind, stmt.lineno))
                elif (isinstance(target, ast.Subscript)
                      and isinstance(target.value, ast.Attribute)
                      and isinstance(target.value.value, ast.Name)
                      and target.value.value.id == "self"):
                    self.owned.setdefault(target.value.attr,
                                          (res.kind, stmt.lineno))
            return
        self._scan_calls(stmt, state)
        self._risky(stmt, state)

    # -- escapes / releases / riskiness -------------------------------------

    def _escape_names(self, node: ast.AST, state: dict[str, _Res]) -> None:
        for sub in ast.walk(node):
            if (isinstance(sub, ast.Name) and sub.id in state
                    and isinstance(sub.ctx, ast.Load)):
                res = state[sub.id]
                if res.state == _OPEN:
                    res.state = _ESCAPED

    def _returns(self, stmt: ast.Return, state: dict[str, _Res]) -> None:
        returned: set[str] = set()
        if stmt.value is not None:
            self._scan_calls_expr(stmt.value, state)
            for sub in ast.walk(stmt.value):
                if isinstance(sub, ast.Name) and sub.id in state:
                    returned.add(sub.id)
        for var in returned:
            res = state[var]
            if res.state == _OPEN:
                if res.risky and not res.protected:
                    self._report(
                        res, stmt.lineno,
                        "can leak on an exception path: a call between "
                        "acquisition and the return can raise while it is "
                        "open; close it in an except/finally before "
                        "re-raising")
                res.state = _ESCAPED
        for res in state.values():
            if res.state == _OPEN and not res.protected:
                self._report(res, stmt.lineno,
                             f"is still open at the return on line "
                             f"{stmt.lineno}")

    def _scan_calls(self, stmt: ast.stmt, state: dict[str, _Res],
                    skip: ast.expr | None = None) -> None:
        for sub in ast.walk(stmt):
            if isinstance(sub, ast.Call) and sub is not skip:
                self._one_call(sub, state)

    def _scan_calls_expr(self, expr: ast.expr,
                         state: dict[str, _Res]) -> None:
        for sub in ast.walk(expr):
            if isinstance(sub, ast.Call):
                self._one_call(sub, state)

    def _one_call(self, call: ast.Call, state: dict[str, _Res]) -> None:
        func = call.func
        # Release: <var>.close() and friends.
        if (isinstance(func, ast.Attribute)
                and isinstance(func.value, ast.Name)
                and func.value.id in state
                and func.attr in _RELEASE_METHODS):
            res = state[func.value.id]
            if res.state == _OPEN:
                if res.risky and not res.protected:
                    self._report(
                        res, call.lineno,
                        f"is released at line {call.lineno}, but a call "
                        "in between can raise and skip the release; move "
                        "it into a finally block or use 'with'")
                res.state = _RELEASED
            return
        # Chained call on a fresh acquisition: the object is unreachable
        # the moment the expression ends.
        if (isinstance(func, ast.Attribute)
                and isinstance(func.value, ast.Call)
                and func.attr not in _RELEASE_METHODS):
            kind = self._acq_kind(func.value)
            if kind is not None:
                self.issues.append(ResourceIssue(
                    module=self.info.module, line=call.lineno,
                    col=call.col_offset,
                    message=f"a {kind} is created and immediately "
                            f"discarded after '.{func.attr}()'; bind it "
                            "and close it (or use 'with')"))
        # Any tracked resource passed as an argument escapes.
        for arg in (*call.args, *(kw.value for kw in call.keywords)):
            self._escape_names(arg, state)

    def _risky(self, node: ast.AST, state: dict[str, _Res],
               exclude: object = None) -> None:
        """Mark open resources vulnerable if this statement may raise."""
        may_raise = any(isinstance(sub, (ast.Call, ast.Raise))
                        for sub in ast.walk(node))
        if not may_raise:
            return
        excluded = (exclude if isinstance(exclude, frozenset)
                    else frozenset() if exclude is None
                    else frozenset({exclude}))
        for var, res in state.items():
            if var in excluded:
                continue
            if res.state == _OPEN and not res.protected:
                res.risky = True

    # -- structured statements ---------------------------------------------

    def _with(self, stmt: ast.With | ast.AsyncWith,
              state: dict[str, _Res]) -> None:
        for item in stmt.items:
            expr = item.context_expr
            if isinstance(expr, ast.Name) and expr.id in state:
                res = state[expr.id]
                if res.state == _OPEN:
                    res.state = _RELEASED
                    res.protected = True
            else:
                # ``with acquire() as x``: the context manager owns the
                # release; x is never tracked.
                self._scan_calls_expr(expr, state)
        self._risky(stmt, state)
        self._block(stmt.body, state)

    def _protects(self, stmts: Sequence[ast.stmt], var: str) -> bool:
        """Do these cleanup statements release or hand off ``var``?"""
        for stmt in stmts:
            for sub in ast.walk(stmt):
                if not isinstance(sub, ast.Call):
                    continue
                func = sub.func
                if (isinstance(func, ast.Attribute)
                        and isinstance(func.value, ast.Name)
                        and func.value.id == var
                        and func.attr in _RELEASE_METHODS):
                    return True
                for arg in (*sub.args,
                            *(kw.value for kw in sub.keywords)):
                    if any(isinstance(n, ast.Name) and n.id == var
                           for n in ast.walk(arg)):
                        return True
        return False

    def _try(self, stmt: ast.Try, state: dict[str, _Res]) -> bool:
        catch_all = [
            h for h in stmt.handlers
            if _exc_names(h.type) & {"BaseException", "Exception"}]
        cleanup: list[ast.stmt] = list(stmt.finalbody)
        for h in catch_all:
            cleanup.extend(h.body)
        for var, res in state.items():
            if res.state == _OPEN and self._protects(cleanup, var):
                res.protected = True
        entry = self._copy(state)
        body_state, body_term = self._block(stmt.body, state)
        for var, res in body_state.items():
            if (res.state == _OPEN
                    and self._protects(cleanup, var)):
                res.protected = True
        # Handler entry: entry-state plus body-acquired resources that
        # were demonstrably open when a later body statement could raise.
        h_entry = self._copy(entry)
        for var, res in body_state.items():
            if var in h_entry:
                h_entry[var] = res.copy()
            elif res.risky and res.state in (_OPEN, _RELEASED):
                # Only acquisitions a *later* statement could interrupt
                # reach the handler: if the acquisition itself raised,
                # the name was never bound, so there is nothing to leak.
                opened = res.copy()
                opened.state = _OPEN
                h_entry[var] = opened
            elif res.state == _ESCAPED:
                h_entry[var] = res.copy()
        ends: list[dict[str, _Res]] = []
        all_term = body_term
        for handler in stmt.handlers:
            hs, ht = self._block(handler.body, self._copy(h_entry))
            if not ht:
                ends.append(hs)
            all_term = all_term and ht
        if not body_term:
            else_state, else_term = self._block(stmt.orelse, body_state)
            if not else_term:
                ends.append(else_state)
            all_term = all_term and else_term
        if ends:
            merged = ends[0]
            for other in ends[1:]:
                merged = self._merge(merged, other)
        else:
            merged = body_state
        state.clear()
        state.update(merged)
        _, fin_term = self._block(stmt.finalbody, state)
        return all_term or fin_term


# ---------------------------------------------------------------------------
# The analysis facade
# ---------------------------------------------------------------------------

class EffectAnalysis:
    """Lazy whole-program resource/effect analysis behind GL15–GL18."""

    def __init__(self, graph: ProjectGraph,
                 modules: Iterable["ModuleContext"],
                 error_classes: Iterable[str] = ()) -> None:
        self.graph = graph
        self.error_classes = frozenset(error_classes)
        self._nodes: dict[str, tuple[ast.AST, str]] = {}
        self._trees: list[tuple[str, ast.Module, str]] = []
        for ctx in modules:
            _index_functions(ctx.path, ctx.tree, self._nodes)
            self._trees.append((ctx.path, ctx.tree, ctx.source))
        self._fn_effects: dict[str, _FnEffects] | None = None
        self._idempotent: dict[str, int] | None = None
        self._exc_parent: dict[str, str] | None = None
        self._escape_table: (
            dict[str, dict[str, tuple[str, int]]] | None) = None
        self._res_classes: dict[str, str] | None = None
        self._returners: dict[str, str] | None = None
        self._markers: frozenset[str] | None = None
        self._resource_issues: list[ResourceIssue] | None = None
        self._escape_issues: list[EscapeIssue] | None = None
        self._retry_issues: list[RetryIssue] | None = None
        self._ambient_issues: list[AmbientIssue] | None = None

    # -- public API ---------------------------------------------------------

    def resource_issues(self) -> list[ResourceIssue]:
        if self._resource_issues is None:
            self._resource_issues = self._run_gl15()
        return self._resource_issues

    def escape_issues(self) -> list[EscapeIssue]:
        if self._escape_issues is None:
            self._escape_issues = self._run_gl16()
        return self._escape_issues

    def retry_issues(self) -> list[RetryIssue]:
        if self._retry_issues is None:
            self._retry_issues = self._run_gl17()
        return self._retry_issues

    def ambient_issues(self) -> list[AmbientIssue]:
        if self._ambient_issues is None:
            self._ambient_issues = self._run_gl18()
        return self._ambient_issues

    # -- shared lazy tables -------------------------------------------------

    def effects_of(self, qual: str) -> _FnEffects:
        return self._effects().get(qual, _FnEffects())

    def _effects(self) -> dict[str, _FnEffects]:
        if self._fn_effects is None:
            out: dict[str, _FnEffects] = {}
            for qual, (node, _path) in self._nodes.items():
                if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    out[qual] = _EffectVisitor().run(node)
            self._fn_effects = out
        return self._fn_effects

    def _idempotent_lines(self) -> dict[str, int]:
        """Qualname -> annotation line for ``# gl: idempotent`` functions."""
        if self._idempotent is None:
            marked: dict[str, set[int]] = {}
            comments: dict[str, set[int]] = {}
            for path, _tree, source in self._trees:
                lines: set[int] = set()
                cmnts: set[int] = set()
                for lineno, line in enumerate(source.splitlines(), start=1):
                    if _IDEMPOTENT_RE.search(line):
                        lines.add(lineno)
                    if line.lstrip().startswith("#"):
                        cmnts.add(lineno)
                if lines:
                    marked[path] = lines
                comments[path] = cmnts
            out: dict[str, int] = {}
            for qual, info in self.graph.functions.items():
                lines = marked.get(info.module)
                if not lines:
                    continue
                if info.lineno in lines:
                    out[qual] = info.lineno
                    continue
                # Walk up the contiguous comment block above the def so
                # the annotation can carry a multi-line justification.
                cmnts = comments[info.module]
                cand = info.lineno - 1
                while cand in cmnts:
                    if cand in lines:
                        out[qual] = cand
                        break
                    cand -= 1
            self._idempotent = out
        return self._idempotent

    def _resource_classes(self) -> dict[str, str]:
        """Project classes that are resources themselves -> kind."""
        if self._res_classes is None:
            out: dict[str, str] = {}
            for name, infos in self.graph.classes.items():
                closure: set[str] = set()
                stack = list(infos)
                while stack:
                    cls = stack.pop()
                    for base in cls.bases:
                        if base in closure:
                            continue
                        closure.add(base)
                        stack.extend(self.graph.classes.get(base, []))
                if closure & _RESOURCE_BASES:
                    out[name] = "server"
                elif closure & {"ExperimentService"}:
                    out[name] = "service"
                elif closure & {"ServiceClient"}:
                    out[name] = "client"
            out.setdefault("ExperimentService", "service")
            out.setdefault("ServiceClient", "client")
            self._res_classes = out
        return self._res_classes

    def _returner_table(self) -> dict[str, str]:
        """Qualnames of functions whose annotation returns a resource."""
        if self._returners is None:
            resource_names = dict(_RESOURCE_CTORS)
            resource_names.update(self._resource_classes())
            resource_names.pop("open", None)
            out: dict[str, str] = {}
            for qual, info in self.graph.functions.items():
                for name in info.returns:
                    kind = resource_names.get(name)
                    if kind is not None:
                        out[qual] = kind
                        break
            self._returners = out
        return self._returners

    def _returner_kind(self, caller: FunctionInfo,
                       site: CallSite) -> str | None:
        """Kind of resource a resolved call returns, if any."""
        if site.is_attr and site.recv_type is None:
            return None
        table = self._returner_table()
        kinds = {table[t.qualname]
                 for t in self.graph.resolve(caller, site)
                 if t.qualname in table}
        if len(kinds) == 1:
            return next(iter(kinds))
        return None

    # -- exception hierarchy ------------------------------------------------

    def _parents(self) -> dict[str, str]:
        if self._exc_parent is None:
            table = dict(_BUILTIN_EXC_PARENT)
            for name, infos in self.graph.classes.items():
                if name in table:
                    continue
                for cls in infos:
                    if cls.bases:
                        table[name] = cls.bases[0]
                        break
            self._exc_parent = table
        return self._exc_parent

    def _ancestors(self, exc: str) -> frozenset[str]:
        table = self._parents()
        out = {exc}
        cur = exc
        for _ in range(32):
            parent = table.get(cur)
            if parent is None:
                # Unknown class: assume a plain Exception subclass.
                if cur not in ("Exception", "BaseException"):
                    out |= {"Exception", "BaseException"}
                break
            out.add(parent)
            cur = parent
        return frozenset(out)

    def _caught_by(self, frames: tuple[frozenset[str], ...],
                   exc: str) -> bool:
        ancestors = self._ancestors(exc)
        return any(frame & ancestors for frame in frames)

    # -- call edges (GL14 discipline) ---------------------------------------

    def _edges(self, info: FunctionInfo,
               ) -> list[tuple[str, CallSite,
                               tuple[frozenset[str], ...]]]:
        eff = self.effects_of(info.qualname)
        out: list[tuple[str, CallSite, tuple[frozenset[str], ...]]] = []
        for site in info.calls:
            if site.is_attr and site.recv_type is None:
                continue
            caught = eff.call_caught.get((site.lineno, site.col), ())
            for target in self.graph.resolve(info, site):
                out.append((target.qualname, site, caught))
        return out

    # -- GL16: raises-set fixpoint ------------------------------------------

    def escapes(self) -> dict[str, dict[str, tuple[str, int]]]:
        """Qualname -> {exception: (origin qualname, origin line)}."""
        if self._escape_table is None:
            table: dict[str, dict[str, tuple[str, int]]] = {}
            for qual, info in self.graph.functions.items():
                direct: dict[str, tuple[str, int]] = {}
                for name, frames, lineno, _col in self.effects_of(
                        qual).raises:
                    if not self._caught_by(frames, name):
                        direct.setdefault(name, (qual, lineno))
                table[qual] = direct
            for _ in range(_MAX_PASSES):
                changed = False
                for qual, info in self.graph.functions.items():
                    mine = table[qual]
                    for target, _site, caught in self._edges(info):
                        for exc, origin in table.get(target, {}).items():
                            if exc in mine:
                                continue
                            if self._caught_by(caught, exc):
                                continue
                            mine[exc] = origin
                            changed = True
                if not changed:
                    break
            self._escape_table = table
        return self._escape_table

    def _worker_roots(self) -> dict[str, str]:
        from repro.lint.dataflow_rules import _thread_roots

        return _thread_roots(self.graph)

    def _run_gl16(self) -> list[EscapeIssue]:
        escapes = self.escapes()
        issues: list[EscapeIssue] = []
        for qual, label in sorted(self._worker_roots().items()):
            info = self.graph.functions.get(qual)
            if info is None:
                continue
            for exc in sorted(escapes.get(qual, {})):
                if exc in self.error_classes or exc in _EXEMPT_ESCAPES:
                    continue
                origin_qual, origin_line = escapes[qual][exc]
                origin = self.graph.functions.get(origin_qual)
                where = (f"{origin.module}:{origin_line}" if origin is not None
                         else f"line {origin_line}")
                via = ("raised directly" if origin_qual == qual
                       else f"raised in {_short(origin_qual)} ({where})")
                issues.append(EscapeIssue(
                    module=info.module, line=info.lineno, col=0,
                    message=f"{exc} can escape worker entry point "
                            f"{label} ({via}); an uncaught exception kills "
                            "the worker instead of answering 5xx — catch "
                            "it or raise a ReproError subclass"))
        return issues

    # -- GL15 ---------------------------------------------------------------

    def _run_gl15(self) -> list[ResourceIssue]:
        issues: list[ResourceIssue] = []
        ownership: dict[str, dict[str, tuple[str, int, str]]] = {}
        for qual in sorted(self.graph.functions):
            info = self.graph.functions[qual]
            node, _path = self._nodes.get(qual, (None, ""))
            if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            walker = _Typestate(self, info, node)
            walker.run()
            issues.extend(walker.issues)
            if info.cls is not None:
                owned = ownership.setdefault(info.cls, {})
                for attr, (kind, line) in walker.owned.items():
                    owned.setdefault(attr, (kind, line, info.module))
        issues.extend(self._ownership_issues(ownership))
        return issues

    def _ownership_issues(
            self, ownership: dict[str, dict[str, tuple[str, int, str]]],
    ) -> list[ResourceIssue]:
        """Classes owning resources must release them from some method."""
        issues: list[ResourceIssue] = []
        for cls_name in sorted(ownership):
            releasers = self._class_releasers(cls_name)
            for attr, (kind, line, module) in sorted(
                    ownership[cls_name].items()):
                if attr in releasers:
                    continue
                issues.append(ResourceIssue(
                    module=module, line=line, col=0,
                    message=f"{cls_name} stores a {kind} in self.{attr} "
                            f"(line {line}) but no method of the class "
                            "releases it — add a close/stop teardown that "
                            "does"))
        return issues

    def _class_releasers(self, cls_name: str) -> set[str]:
        """Attrs of ``cls_name`` some method both reads and releases."""
        closure = {cls_name}
        stack = [cls_name]
        while stack:
            for cls in self.graph.classes.get(stack.pop(), []):
                for base in cls.bases:
                    if base not in closure:
                        closure.add(base)
                        stack.append(base)
        out: set[str] = set()
        for name in closure:
            for cls in self.graph.classes.get(name, []):
                for method in cls.methods.values():
                    # A method releases either by calling close/stop/...
                    # on something, or by *being* the teardown (its own
                    # name is a release verb, delegating the actual call
                    # to a helper like ``_hangup(self._conn)``).
                    releases = (method.name in _RELEASE_METHODS
                                or any(s.name in _RELEASE_METHODS
                                       for s in method.calls))
                    if not releases:
                        continue
                    out |= self.effects_of(method.qualname).self_attr_reads
        return out

    # -- GL17 ---------------------------------------------------------------

    def _marker_funcs(self) -> frozenset[str]:
        """Functions that lexically call ``backoff_s``/``charge_s``."""
        if self._markers is None:
            self._markers = frozenset(
                qual for qual in self.graph.functions
                if self.effects_of(qual).has_retry_marker)
        return self._markers

    def _retry_spans(self, qual: str) -> list[tuple[int, int]]:
        """Line spans of retry-driven loops in one function."""
        info = self.graph.functions[qual]
        eff = self.effects_of(qual)
        spans = list(eff.retry_loops)
        markers = self._marker_funcs()
        for span in eff.candidate_loops:
            for target, site, _caught in self._edges(info):
                if (span[0] <= site.lineno <= span[1]
                        and target in markers):
                    spans.append(span)
                    break
        return spans

    def _suspect_writes(self) -> dict[str, list[tuple[str, str, int]]]:
        """Transitive at-most-once mutations: qual -> (attr, kind, line)."""
        table: dict[str, list[tuple[str, str, int]]] = {}
        annotated = self._idempotent_lines()
        for qual, info in self.graph.functions.items():
            table[qual] = [(w.attr, w.kind, w.lineno) for w in info.writes
                           if w.kind in _SUSPECT_WRITE_KINDS]
        for _ in range(_MAX_PASSES):
            changed = False
            for qual, info in self.graph.functions.items():
                if qual in annotated:
                    continue
                mine = table[qual]
                seen = {(a, k) for a, k, _l in mine}
                for target, _site, _caught in self._edges(info):
                    if target in annotated:
                        continue
                    for attr, kind, line in table.get(target, ()):
                        if (attr, kind) not in seen:
                            mine.append((attr, kind, line))
                            seen.add((attr, kind))
                            changed = True
            if not changed:
                break
        return table

    def _run_gl17(self) -> list[RetryIssue]:
        issues: list[RetryIssue] = []
        writes = self._suspect_writes()
        annotated = self._idempotent_lines()
        for qual in sorted(self.graph.functions):
            info = self.graph.functions[qual]
            spans = self._retry_spans(qual)
            if spans or qual in annotated:
                pass
            else:
                continue
            if spans and qual not in annotated:
                issues.extend(self._loop_issues(info, spans, writes))
            if qual in annotated:
                # The fixpoint never propagates into annotated functions,
                # so look one call level deep by hand: an annotation is
                # stale only if neither the function nor anything it
                # calls performs an at-most-once mutation.
                direct = writes.get(qual, [])
                callee_muts = any(
                    writes.get(target)
                    for target, _site, _caught in self._edges(info))
                if not direct and not callee_muts and not spans:
                    issues.append(RetryIssue(
                        module=info.module, line=annotated[qual], col=0,
                        message=f"stale '# gl: idempotent' on "
                                f"{_short(qual)}: it performs no "
                                "at-most-once mutations — drop the "
                                "annotation"))
        return issues

    def _loop_issues(self, info: FunctionInfo, spans: list[tuple[int, int]],
                     writes: dict[str, list[tuple[str, str, int]]],
                     ) -> list[RetryIssue]:
        issues: list[RetryIssue] = []
        annotated = self._idempotent_lines()

        def in_span(line: int) -> bool:
            return any(lo <= line <= hi for lo, hi in spans)

        for w in info.writes:
            if w.kind in _SUSPECT_WRITE_KINDS and in_span(w.lineno):
                verb = ("bumps" if w.kind == "augassign" else "mutates")
                issues.append(RetryIssue(
                    module=info.module, line=w.lineno, col=w.col,
                    message=f"{_short(info.qualname)} {verb} "
                            f"self.{w.attr} inside its retry loop; a "
                            "retried attempt double-applies it — make the "
                            "write idempotent or annotate the function "
                            "'# gl: idempotent'"))
        reported: set[str] = set()
        for target, site, _caught in self._edges(info):
            if not in_span(site.lineno) or target in annotated:
                continue
            muts = writes.get(target, [])
            if not muts or target in reported:
                continue
            reported.add(target)
            attr, kind, line = muts[0]
            verb = "bumps" if kind == "augassign" else "mutates"
            issues.append(RetryIssue(
                module=info.module, line=site.lineno, col=site.col,
                message=f"{_short(target)}() runs under "
                        f"{_short(info.qualname)}'s retry loop and "
                        f"{verb} {attr} (line {line}); retries "
                        "double-apply it — make it pure or annotate it "
                        "'# gl: idempotent'"))
        return issues

    # -- GL18 ---------------------------------------------------------------

    def _digest_scope(self) -> frozenset[str]:
        """``cache_key``/``lab_snapshot_key`` and everything they call."""
        seeds = [q for q, f in self.graph.functions.items()
                 if f.name in _DIGEST_FUNCS]
        seen: set[str] = set()
        while seeds:
            qual = seeds.pop()
            if qual in seen:
                continue
            seen.add(qual)
            seeds.extend(q for q in self.graph.callees(qual)
                         if q not in seen)
        return frozenset(seen)

    def _mutable_globals(self) -> dict[str, dict[str, int]]:
        """Module path -> {global name: definition line} (mutated only)."""
        defined: dict[str, dict[str, int]] = {}
        for path, tree, _source in self._trees:
            names: dict[str, int] = {}
            for stmt in tree.body:
                target = None
                value = None
                if isinstance(stmt, ast.Assign) and len(stmt.targets) == 1:
                    target, value = stmt.targets[0], stmt.value
                elif isinstance(stmt, ast.AnnAssign):
                    target, value = stmt.target, stmt.value
                if not isinstance(target, ast.Name) or value is None:
                    continue
                mutable = isinstance(value, (ast.Dict, ast.List, ast.Set,
                                             ast.DictComp, ast.ListComp,
                                             ast.SetComp))
                if isinstance(value, ast.Call):
                    name = _call_name(value)
                    mutable = (name in _MUTABLE_CTORS
                               or name in self.graph.classes)
                if mutable:
                    names[target.id] = stmt.lineno
            if names:
                defined[path] = names
        # Keep only globals some function in the same module mutates.
        out: dict[str, dict[str, int]] = {}
        for qual, info in self.graph.functions.items():
            names = defined.get(info.module)
            if not names:
                continue
            eff = self.effects_of(qual)
            hit = {
                g for g in names
                if g in eff.global_writes
                or any(recv == g and meth in _GL18_MUTATORS
                       for recv, meth in eff.recv_calls)}
            if hit:
                bucket = out.setdefault(info.module, {})
                for g in hit:
                    bucket[g] = names[g]
        return out

    def _mutable_class_attrs(self) -> dict[str, set[str]]:
        """Class name -> class-level mutable attrs some method mutates."""
        candidates: dict[str, set[str]] = {}
        for _path, tree, _source in self._trees:
            for node in ast.walk(tree):
                if not isinstance(node, ast.ClassDef):
                    continue
                for stmt in node.body:
                    target = None
                    value = None
                    if (isinstance(stmt, ast.Assign)
                            and len(stmt.targets) == 1):
                        target, value = stmt.targets[0], stmt.value
                    elif isinstance(stmt, ast.AnnAssign):
                        target, value = stmt.target, stmt.value
                    if (isinstance(target, ast.Name)
                            and isinstance(value, (ast.Dict, ast.List,
                                                   ast.Set))):
                        candidates.setdefault(node.name, set()).add(
                            target.id)
        out: dict[str, set[str]] = {}
        for name, attrs in candidates.items():
            mutated: set[str] = set()
            for cls in self.graph.classes.get(name, []):
                for method in cls.methods.values():
                    for w in method.writes:
                        if w.attr in attrs and w.kind in ("item", "mutcall",
                                                          "augassign"):
                            mutated.add(w.attr)
            if mutated:
                out[name] = mutated
        return out

    def _run_gl18(self) -> list[AmbientIssue]:
        reachable = self.graph.reachable_from_roots()
        digest = self._digest_scope()
        mutable = self._mutable_globals()
        class_attrs = self._mutable_class_attrs()
        issues: list[AmbientIssue] = []
        for qual in sorted(reachable):
            if qual in digest:
                continue
            info = self.graph.functions.get(qual)
            if info is None:
                continue
            eff = self.effects_of(qual)
            for lineno, col in eff.env_reads[:1]:
                issues.append(AmbientIssue(
                    module=info.module, line=lineno, col=col,
                    message=f"{_short(qual)} reads an environment "
                            "variable on the cached-compute path, but "
                            "cache_key never digests it — a changed "
                            "environment serves a stale cached result"))
            for g, def_line in sorted(mutable.get(info.module, {}).items()):
                read = eff.name_reads.get(g)
                if read is None:
                    continue
                issues.append(AmbientIssue(
                    module=info.module, line=read[0], col=read[1],
                    message=f"{_short(qual)} reads mutated module "
                            f"global '{g}' (defined line {def_line}) on "
                            "the cached-compute path; its contents can "
                            "influence a result cache_key never sees"))
            if info.cls is not None:
                for attr in sorted(class_attrs.get(info.cls, ())):
                    if attr not in eff.self_attr_reads:
                        continue
                    issues.append(AmbientIssue(
                        module=info.module, line=info.lineno, col=0,
                        message=f"{_short(qual)} reads mutable class "
                                f"attribute {info.cls}.{attr} (shared "
                                "across instances) on the cached-compute "
                                "path without digesting it into "
                                "cache_key"))
        return issues


def _short(qualname: str) -> str:
    """``path::Class.name`` -> ``Class.name`` for messages."""
    return qualname.rsplit("::", 1)[-1]
