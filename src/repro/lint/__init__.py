"""greenlint — AST-based invariant checking for the repro codebase.

The paper's credibility rests on correct energy accounting: joules must
be the integral of watts over seconds.  This package mechanically
enforces the conventions the rest of :mod:`repro` documents informally:

* base-SI quantity suffixes (``_j``/``_w``/``_s``/``_bytes``/``_hz``)
  must combine dimensionally (GL1),
* unit constants come from :mod:`repro.units`, never as magic literals
  (GL2),
* every ``raise`` uses the :class:`~repro.errors.ReproError` hierarchy
  (GL3),
* randomness flows through :mod:`repro.rng` named streams (GL4), and
* quantity-suffixed parameters are passed by keyword (GL5).

On top of those per-file checks, :mod:`repro.lint.graph` builds a
whole-program call graph with per-function purity/lock/energy summaries
that powers the cross-module rules in :mod:`repro.lint.graph_rules`:

* experiment-reachable code is pure and deterministic (GL6),
* ``# gl: guarded-by=<lock>`` fields are written only under their lock
  (GL7),
* the observed lock-acquisition order is cycle-free (GL8),
* energy-carrying results are never dropped (GL9), and
* every scalar ``BlockDevice`` implementer also serves the batched
  path (GL10).

One layer further up, :mod:`repro.lint.dataflow` abstractly interprets
every function over the dimension lattice — propagating units through
assignments, tuple unpacking, and call-return summaries to a fixpoint —
which powers the semantic rules in :mod:`repro.lint.dataflow_rules`:

* no arithmetic/comparison mixes dimensions anywhere along a flow
  (GL11),
* no suffixed name is rebound to another dimension, even through a
  helper return (GL12),
* component sums over accounting records are complete (GL13), and
* no shared attribute is written from two thread roots without a
  common lock — Eraser-style static race detection (GL14).

Finally, :mod:`repro.lint.effects` layers resource/effect summaries
over the same graph, powering the lifecycle rules in
:mod:`repro.lint.lifecycle_rules`:

* acquired resources (sockets, clients, servers, threads, executors,
  temp files) are released, escaped to an owner, or with-managed on
  every path, including exception paths (GL15),
* only :class:`~repro.errors.ReproError` escapes worker entry points —
  ``do_*`` HTTP handlers and thread targets (GL16),
* code re-executed by ``RetryPolicy`` loops carries no at-most-once
  mutation unless annotated ``# gl: idempotent`` (GL17), and
* experiment-reachable code reads no ambient state the sha256
  ``cache_key``/``lab_snapshot_key`` never digests (GL18).

Known pre-existing findings live in ``tools/greenlint-baseline.json``
and are subtracted by ``repro lint --baseline`` (see
:mod:`repro.lint.baseline`).  ``repro lint`` reuses per-file work via a
content-keyed cache (:mod:`repro.lint.cache`); ``--no-cache`` bypasses
it.

Run it with ``repro lint [paths...]`` or programmatically::

    from repro.lint import lint_paths
    result = lint_paths(["src/repro"])
    assert not result.findings

Suppress a single finding with a line comment::

    flags < (1 << 16)   # greenlint: ignore[GL2]  (u16 bitfield, not RAPL)
"""

from repro.lint.baseline import (
    apply_baseline,
    finding_records,
    load_baseline,
    normalize_path,
    write_baseline,
)
from repro.lint.engine import (
    RULES,
    Finding,
    LintResult,
    ModuleContext,
    ProjectContext,
    Rule,
    iter_py_files,
    lint_paths,
    lint_source,
    rule,
)
from repro.lint import dataflow_rules as _dataflow_rules  # noqa: F401  (populates RULES)
from repro.lint import graph_rules as _graph_rules  # noqa: F401  (populates RULES)
from repro.lint import lifecycle_rules as _lifecycle_rules  # noqa: F401  (populates RULES)
from repro.lint import rules as _rules  # noqa: F401  (populates RULES)
from repro.lint.dataflow import DimDataflow
from repro.lint.effects import EffectAnalysis
from repro.lint.graph import ProjectGraph
from repro.lint.report import render_json, render_sarif, render_text

__all__ = [
    "RULES",
    "DimDataflow",
    "EffectAnalysis",
    "Finding",
    "LintResult",
    "ModuleContext",
    "ProjectContext",
    "ProjectGraph",
    "Rule",
    "apply_baseline",
    "finding_records",
    "iter_py_files",
    "lint_paths",
    "lint_source",
    "load_baseline",
    "normalize_path",
    "render_json",
    "render_sarif",
    "render_text",
    "rule",
    "write_baseline",
]
