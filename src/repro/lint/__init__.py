"""greenlint — AST-based invariant checking for the repro codebase.

The paper's credibility rests on correct energy accounting: joules must
be the integral of watts over seconds.  This package mechanically
enforces the conventions the rest of :mod:`repro` documents informally:

* base-SI quantity suffixes (``_j``/``_w``/``_s``/``_bytes``/``_hz``)
  must combine dimensionally (GL1),
* unit constants come from :mod:`repro.units`, never as magic literals
  (GL2),
* every ``raise`` uses the :class:`~repro.errors.ReproError` hierarchy
  (GL3),
* randomness flows through :mod:`repro.rng` named streams (GL4), and
* quantity-suffixed parameters are passed by keyword (GL5).

Run it with ``repro lint [paths...]`` or programmatically::

    from repro.lint import lint_paths
    result = lint_paths(["src/repro"])
    assert not result.findings

Suppress a single finding with a line comment::

    flags < (1 << 16)   # greenlint: ignore[GL2]  (u16 bitfield, not RAPL)
"""

from repro.lint.engine import (
    RULES,
    Finding,
    LintResult,
    ModuleContext,
    ProjectContext,
    Rule,
    iter_py_files,
    lint_paths,
    lint_source,
    rule,
)
from repro.lint import rules as _rules  # noqa: F401  (populates RULES)
from repro.lint.report import render_json, render_text

__all__ = [
    "RULES",
    "Finding",
    "LintResult",
    "ModuleContext",
    "ProjectContext",
    "Rule",
    "iter_py_files",
    "lint_paths",
    "lint_source",
    "render_json",
    "render_text",
    "rule",
]
