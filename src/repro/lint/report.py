"""Greenlint output rendering: human text, machine JSON, and SARIF.

The JSON document is the contract consumed by benchmark automation (see
``EXPERIMENTS.md``): a stable ``version`` field, per-finding records,
and aggregate counts, so CI can diff lint state across commits without
scraping text.  The SARIF 2.1.0 document is the interchange format code
hosts ingest to annotate PR diffs; it is derived from the same
normalized records so the two artifacts never disagree.
"""

from __future__ import annotations

import json

from repro.lint.baseline import finding_records
from repro.lint.engine import RULES, LintResult


def render_text(result: LintResult) -> str:
    """Render findings as ``path:line:col CODE message`` lines + summary."""
    lines = [f.format() for f in result.findings]
    n_err = len(result.errors())
    n_warn = len(result.warnings())
    cache_note = (
        f"; cache: {result.cache_hits} hit"
        f"{'s' if result.cache_hits != 1 else ''}, "
        f"{result.cache_misses} miss"
        f"{'es' if result.cache_misses != 1 else ''}"
        if result.cache_hits or result.cache_misses else "")
    if result.findings:
        lines.append("")
        lines.append(
            f"{len(result.findings)} finding"
            f"{'s' if len(result.findings) != 1 else ''} "
            f"({n_err} error{'s' if n_err != 1 else ''}, "
            f"{n_warn} warning{'s' if n_warn != 1 else ''}) "
            f"in {result.files_checked} files"
            + (f"; {result.suppressed} suppressed" if result.suppressed else "")
            + (f"; {result.baselined} baselined" if result.baselined else "")
            + cache_note)
    else:
        lines.append(
            f"clean: {result.files_checked} files"
            + (f", {result.suppressed} suppressed finding"
               f"{'s' if result.suppressed != 1 else ''}"
               if result.suppressed else "")
            + (f", {result.baselined} baselined finding"
               f"{'s' if result.baselined != 1 else ''}"
               if result.baselined else "")
            + cache_note)
    return "\n".join(lines)


def render_json(result: LintResult) -> str:
    """Render the run as a stable machine-readable JSON document.

    Paths are normalized (POSIX separators, relative to the working
    directory where possible) and records re-sorted on the normalized
    spelling, so the same tree produces byte-identical output on every
    filesystem — a requirement for baseline files and CI artifact diffs.
    """
    records = finding_records(result.findings)
    doc = {
        "version": 1,
        "tool": "greenlint",
        "files_checked": result.files_checked,
        "suppressed": result.suppressed,
        "baselined": result.baselined,
        "cache": {"hits": result.cache_hits, "misses": result.cache_misses},
        "counts": result.counts(),
        "rules": {
            code: {"name": r.name, "severity": r.severity}
            for code, r in sorted(RULES.items())
        },
        "findings": records,
    }
    return json.dumps(doc, indent=2, sort_keys=False)


_SARIF_LEVEL = {"error": "error", "warning": "warning"}


def render_sarif(result: LintResult) -> str:
    """Render the run as a SARIF 2.1.0 document (stdlib-only).

    Emits one run with the full rule inventory (so hosts can show rule
    metadata even for codes with no findings this run) and one result
    per finding, in the same normalized order as :func:`render_json`.
    Columns are converted from greenlint's 0-based ``col`` to SARIF's
    1-based ``startColumn``.
    """
    rules = [
        {
            "id": code,
            "name": r.name,
            "shortDescription": {"text": r.name},
            "defaultConfiguration": {
                "level": _SARIF_LEVEL.get(r.severity, "warning"),
            },
        }
        for code, r in sorted(RULES.items())
    ]
    rule_index = {r["id"]: i for i, r in enumerate(rules)}
    results = []
    for rec in finding_records(result.findings):
        results.append({
            "ruleId": rec["code"],
            "ruleIndex": rule_index.get(rec["code"], -1),
            "level": _SARIF_LEVEL.get(rec["severity"], "warning"),
            "message": {"text": rec["message"]},
            "locations": [{
                "physicalLocation": {
                    "artifactLocation": {
                        "uri": rec["path"],
                        "uriBaseId": "SRCROOT",
                    },
                    "region": {
                        "startLine": rec["line"],
                        "startColumn": rec["col"] + 1,
                    },
                },
            }],
        })
    doc = {
        "$schema": ("https://raw.githubusercontent.com/oasis-tcs/"
                    "sarif-spec/master/Schemata/sarif-schema-2.1.0.json"),
        "version": "2.1.0",
        "runs": [{
            "tool": {
                "driver": {
                    "name": "greenlint",
                    "rules": rules,
                },
            },
            "originalUriBaseIds": {"SRCROOT": {"uri": "file:///"}},
            "results": results,
            "properties": {
                "filesChecked": result.files_checked,
                "suppressed": result.suppressed,
                "baselined": result.baselined,
            },
        }],
    }
    return json.dumps(doc, indent=2, sort_keys=False)
