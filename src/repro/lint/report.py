"""Greenlint output rendering: human text and machine JSON.

The JSON document is the contract consumed by benchmark automation (see
``EXPERIMENTS.md``): a stable ``version`` field, per-finding records,
and aggregate counts, so CI can diff lint state across commits without
scraping text.
"""

from __future__ import annotations

import json

from repro.lint.baseline import finding_records
from repro.lint.engine import RULES, LintResult


def render_text(result: LintResult) -> str:
    """Render findings as ``path:line:col CODE message`` lines + summary."""
    lines = [f.format() for f in result.findings]
    n_err = len(result.errors())
    n_warn = len(result.warnings())
    cache_note = (
        f"; cache: {result.cache_hits} hit"
        f"{'s' if result.cache_hits != 1 else ''}, "
        f"{result.cache_misses} miss"
        f"{'es' if result.cache_misses != 1 else ''}"
        if result.cache_hits or result.cache_misses else "")
    if result.findings:
        lines.append("")
        lines.append(
            f"{len(result.findings)} finding"
            f"{'s' if len(result.findings) != 1 else ''} "
            f"({n_err} error{'s' if n_err != 1 else ''}, "
            f"{n_warn} warning{'s' if n_warn != 1 else ''}) "
            f"in {result.files_checked} files"
            + (f"; {result.suppressed} suppressed" if result.suppressed else "")
            + (f"; {result.baselined} baselined" if result.baselined else "")
            + cache_note)
    else:
        lines.append(
            f"clean: {result.files_checked} files"
            + (f", {result.suppressed} suppressed finding"
               f"{'s' if result.suppressed != 1 else ''}"
               if result.suppressed else "")
            + (f", {result.baselined} baselined finding"
               f"{'s' if result.baselined != 1 else ''}"
               if result.baselined else "")
            + cache_note)
    return "\n".join(lines)


def render_json(result: LintResult) -> str:
    """Render the run as a stable machine-readable JSON document.

    Paths are normalized (POSIX separators, relative to the working
    directory where possible) and records re-sorted on the normalized
    spelling, so the same tree produces byte-identical output on every
    filesystem — a requirement for baseline files and CI artifact diffs.
    """
    records = finding_records(result.findings)
    doc = {
        "version": 1,
        "tool": "greenlint",
        "files_checked": result.files_checked,
        "suppressed": result.suppressed,
        "baselined": result.baselined,
        "cache": {"hits": result.cache_hits, "misses": result.cache_misses},
        "counts": result.counts(),
        "rules": {
            code: {"name": r.name, "severity": r.severity}
            for code, r in sorted(RULES.items())
        },
        "findings": records,
    }
    return json.dumps(doc, indent=2, sort_keys=False)
