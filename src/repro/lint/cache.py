"""Incremental lint cache: per-file findings and graph summaries.

``repro lint`` re-lints the whole tree on every invocation; most of
that work is per-file and purely content-determined — the file-scope
rules (GL1–GL5) and the module's :class:`~repro.lint.graph.ModuleSummary`
are functions of the source text plus a small amount of project state.
This module persists exactly that unit under ``tools/out/lint-cache/``:

* the key is ``sha256(salt + path + source)``, where the salt (computed
  by the engine) folds in the selected file-scope rules, the project
  signature/error tables, and the lint package's own sources — any of
  those changing invalidates every entry at once, so a hit is always
  exact;
* the value is a pickled :class:`CacheEntry` — the file's
  post-suppression findings, its suppressed count, and its module
  summary, which the engine merges into the project graph without
  re-walking the AST.

Whole-program state (graph analyses, the dataflow fixpoint, the
project-scope rules GL6–GL14) is never cached: it depends on every
file, and recomputing it is what the per-file savings pay for.

Corrupt or unreadable entries are treated as misses; writes go through
a temp file and ``os.replace`` so a killed run never leaves a torn
entry behind.  ``repro lint --no-cache`` bypasses the cache entirely.
"""

from __future__ import annotations

import hashlib
import os
import pickle
from dataclasses import dataclass
from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.lint.engine import Finding
    from repro.lint.graph import ModuleSummary

#: Default location, relative to the invoking working directory (the
#: repo root for ``tools/check.sh`` and CI).
DEFAULT_CACHE_DIR = os.path.join("tools", "out", "lint-cache")

#: Soft bound on resident entries; the prune pass drops the oldest
#: beyond it so an often-edited tree cannot grow the cache unboundedly.
MAX_ENTRIES = 4096


@dataclass
class CacheEntry:
    """Everything per-file work produces for one (salt, path, source)."""

    findings: list[Finding]
    suppressed: int
    summary: ModuleSummary


class LintCache:
    """Content-keyed store of :class:`CacheEntry` pickles."""

    def __init__(self, root: str, salt: str) -> None:
        self.root = root
        self.salt = salt
        os.makedirs(root, exist_ok=True)

    def _entry_path(self, path: str, source: str) -> str:
        digest = hashlib.sha256(
            b"\0".join((self.salt.encode(), path.encode(),
                        source.encode()))).hexdigest()
        return os.path.join(self.root, f"{digest}.pkl")

    def load(self, path: str, source: str) -> CacheEntry | None:
        """The cached entry for this exact content, or None."""
        entry_path = self._entry_path(path, source)
        try:
            with open(entry_path, "rb") as fh:
                entry = pickle.load(fh)
        except (OSError, pickle.UnpicklingError, EOFError, AttributeError,
                ImportError, IndexError):
            return None
        if not isinstance(entry, CacheEntry):
            return None
        # Freshen mtime so the prune pass evicts by recency of use.
        try:
            os.utime(entry_path)
        except OSError:
            pass
        return entry

    def store(self, path: str, source: str, entry: CacheEntry) -> None:
        """Persist an entry; failures are silent (the cache is advisory)."""
        entry_path = self._entry_path(path, source)
        tmp_path = f"{entry_path}.tmp.{os.getpid()}"
        try:
            with open(tmp_path, "wb") as fh:
                pickle.dump(entry, fh, protocol=pickle.HIGHEST_PROTOCOL)
            os.replace(tmp_path, entry_path)
        except OSError:
            try:
                os.unlink(tmp_path)
            except OSError:
                pass

    def prune(self) -> int:
        """Drop least-recently-used entries beyond the bound."""
        try:
            names = [n for n in os.listdir(self.root) if n.endswith(".pkl")]
        except OSError:
            return 0
        if len(names) <= MAX_ENTRIES:
            return 0
        stamped = []
        for name in names:
            full = os.path.join(self.root, name)
            try:
                stamped.append((os.path.getmtime(full), full))
            except OSError:
                continue
        stamped.sort()
        removed = 0
        for _mtime, full in stamped[:len(stamped) - MAX_ENTRIES]:
            try:
                os.unlink(full)
                removed += 1
            except OSError:
                continue
        return removed
