"""Whole-program module/call graph with per-function summaries.

The per-file rules (GL1–GL5) check what a single module can prove.  The
concurrency and conservation rules (GL6–GL10) need to know what happens
*across* modules: whether a pipeline ``run()`` transitively reaches a
wall-clock read three calls away, whether two locks are ever taken in
opposite orders, whether every ``StagePower`` a stage produces rolls up
into a report.  This module builds the shared substrate those rules
query:

* a :class:`FunctionInfo` per function/method — its signature, every
  call site (with the receiver type when it can be resolved), every
  lock acquisition, every ``self.attr`` write (with the locks held at
  the write), and its direct *impurity facts* (wall-clock reads,
  ``os.urandom``, unseeded RNG, iteration over unordered sources);
* a :class:`ClassInfo` per class — bases, methods, lock-typed
  attributes, attribute types inferred from ``__init__`` constructor
  assignments, and ``# gl: guarded-by=<lock>`` declarations;
* name-based call resolution with three precision tiers: exact receiver
  type (``self``, annotated parameters, locally constructed objects),
  then unique global name, then *signature-compatible dynamic dispatch*
  (an untyped ``device.service(req)`` reaches every project method
  named ``service`` whose signature accepts that call — how protocol
  dispatch stays visible to the analysis);
* memoized whole-program analyses on top: reachability from the
  experiment/pipeline roots, and per-function transitive lock sets.

Everything is resolved by name over the linted tree only; nothing is
imported or executed.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Iterable, Iterator, Sequence

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.lint.engine import ModuleContext

#: ``# gl: guarded-by=<lock>`` — declares that the attribute assigned on
#: this line must only ever be written while ``self.<lock>`` is held.
_GUARDED_BY_RE = re.compile(r"#\s*gl:\s*guarded-by=([A-Za-z_]\w*)")

#: Wall-clock and entropy sources banned on experiment-reachable paths.
_WALL_CLOCK_TIME_ATTRS = frozenset({
    "time", "time_ns", "monotonic", "monotonic_ns", "perf_counter",
    "perf_counter_ns", "process_time", "process_time_ns", "sleep",
})
_DATETIME_NOW_ATTRS = frozenset({"now", "utcnow", "today"})

#: Sources whose iteration order depends on hash seeds / environment.
_UNORDERED_PRODUCERS = frozenset({"set", "frozenset", "vars", "globals"})

#: Container methods that mutate their receiver in place.  A call to one
#: of these on a guarded attribute is a write for lock-discipline checks.
_MUTATOR_METHODS = frozenset({
    "append", "appendleft", "add", "clear", "discard", "extend", "insert",
    "move_to_end", "pop", "popitem", "remove", "setdefault", "update",
})

#: Lowercase constructor names that still type a receiver: ``x = dict()``
#: followed by ``x.get(...)`` is a builtin call, never project dispatch.
_BUILTIN_CONTAINER_CTORS = frozenset({
    "dict", "list", "set", "frozenset", "tuple", "defaultdict", "deque",
})


# ---------------------------------------------------------------------------
# Summaries
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class ParamSig:
    """Call-compatibility signature (``self``/``cls`` already dropped)."""

    params: tuple[str, ...]
    n_required: int
    kwonly: tuple[str, ...]
    kwonly_required: frozenset[str]
    has_vararg: bool = False
    has_kwarg: bool = False

    def accepts(self, n_pos: int, kwnames: Sequence[str]) -> bool:
        """Could a call with this shape bind to the signature?"""
        if n_pos > len(self.params) and not self.has_vararg:
            return False
        known = set(self.params) | set(self.kwonly)
        if not self.has_kwarg and any(k not in known for k in kwnames):
            return False
        # Positionally-filled params cannot also be passed by keyword.
        if any(k in self.params[:n_pos] for k in kwnames):
            return False
        bound = set(self.params[:n_pos]) | set(kwnames)
        required = set(self.params[:self.n_required]) | self.kwonly_required
        return required <= bound


@dataclass(frozen=True)
class CallSite:
    """One call expression inside a function body."""

    name: str                        #: simple callee name (attr or bare)
    is_attr: bool                    #: obj.name(...) vs name(...)
    recv_type: str | None         #: receiver class when resolvable
    n_pos: int
    kwnames: tuple[str, ...]
    held_locks: tuple[str, ...]      #: lock ids held lexically at the call
    lineno: int
    col: int
    discarded: bool = False          #: an expression statement by itself


@dataclass(frozen=True)
class LockAcquisition:
    """One ``with <lock>:`` entry, with the locks already held."""

    lock: str                        #: lock id, e.g. ``LruCache._lock``
    held: tuple[str, ...]
    lineno: int
    col: int


@dataclass(frozen=True)
class AttrWrite:
    """One mutation of ``self.<attr>`` inside a method."""

    attr: str
    kind: str                        #: assign | augassign | item | mutcall
    held_locks: tuple[str, ...]
    lineno: int
    col: int


@dataclass(frozen=True)
class Impurity:
    """One direct non-deterministic act inside a function body."""

    reason: str
    lineno: int
    col: int


@dataclass
class FunctionInfo:
    """Summary of one function or method."""

    qualname: str                    #: ``path::Class.name`` / ``path::name``
    name: str
    cls: str | None
    module: str                      #: source path as linted
    lineno: int
    sig: ParamSig
    returns: tuple[str, ...] = ()    #: names in the return annotation
    is_root: bool = False
    calls: list[CallSite] = field(default_factory=list)
    lock_acqs: list[LockAcquisition] = field(default_factory=list)
    writes: list[AttrWrite] = field(default_factory=list)
    impurities: list[Impurity] = field(default_factory=list)
    #: (target, callee-name-if-value-is-a-call, line, col) per local assign.
    local_assigns: list[tuple[str, str | None, int, int]] = field(
        default_factory=list)
    #: every local name read anywhere in the body (flow-insensitive).
    loaded_names: set[str] = field(default_factory=set)
    #: callables handed to another thread of control: ``pool.submit(f)``,
    #: ``Thread(target=f)``, ``Executor(initializer=f)``.  Each entry is
    #: ``(kind, name, lineno)`` with kind ``"self"`` (``self.f``) or
    #: ``"bare"`` (a plain name).  These seed the GL14 thread roots.
    thread_targets: list[tuple[str, str, int]] = field(default_factory=list)


@dataclass
class ClassInfo:
    """Summary of one class definition."""

    name: str
    module: str
    lineno: int
    bases: tuple[str, ...]
    is_protocol: bool = False
    methods: dict[str, FunctionInfo] = field(default_factory=dict)
    #: attr -> class name, inferred from ``self.attr = ClassName(...)``.
    attr_types: dict[str, str] = field(default_factory=dict)
    #: attrs assigned ``threading.Lock()`` / ``threading.RLock()``.
    lock_attrs: set[str] = field(default_factory=set)
    #: attr -> declared lock attr (``# gl: guarded-by=<lock>``).
    guarded: dict[str, str] = field(default_factory=dict)
    #: attr -> line of its guarded-by declaration (for findings).
    guarded_lines: dict[str, int] = field(default_factory=dict)


# ---------------------------------------------------------------------------
# Per-module collection
# ---------------------------------------------------------------------------

def _param_sig(fn: ast.FunctionDef | ast.AsyncFunctionDef,
               drop_self: bool) -> ParamSig:
    args = fn.args
    names = [a.arg for a in (*args.posonlyargs, *args.args)]
    if drop_self and names and names[0] in ("self", "cls"):
        names = names[1:]
    n_required = max(0, len(names) - len(args.defaults))
    kwonly = tuple(a.arg for a in args.kwonlyargs)
    kwonly_required = frozenset(
        a.arg for a, d in zip(args.kwonlyargs, args.kw_defaults) if d is None)
    return ParamSig(
        params=tuple(names), n_required=n_required, kwonly=kwonly,
        kwonly_required=kwonly_required,
        has_vararg=args.vararg is not None,
        has_kwarg=args.kwarg is not None,
    )


def _annotation_names(node: ast.expr | None) -> list[str]:
    """Every plain class name mentioned in an annotation expression."""
    if node is None:
        return []
    names: list[str] = []
    for sub in ast.walk(node):
        if isinstance(sub, ast.Name):
            names.append(sub.id)
        elif isinstance(sub, ast.Attribute):
            names.append(sub.attr)
        elif isinstance(sub, ast.Constant) and isinstance(sub.value, str):
            # String annotations: take the identifier tokens.
            names.extend(re.findall(r"[A-Za-z_]\w*", sub.value))
    return names


def _outer_annotation_name(node: ast.expr | None) -> str | None:
    """The root class of an annotation: ``dict[Any, int]`` -> ``dict``."""
    while isinstance(node, ast.Subscript):
        node = node.value
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Attribute):
        return node.attr
    return None


def _guard_annotations(source: str) -> dict[int, str]:
    """Map 1-based line number -> declared lock name."""
    out: dict[int, str] = {}
    for lineno, line in enumerate(source.splitlines(), start=1):
        m = _GUARDED_BY_RE.search(line)
        if m:
            out[lineno] = m.group(1)
    return out


def _call_shape(node: ast.Call) -> tuple[int, tuple[str, ...]]:
    n_pos = sum(1 for a in node.args if not isinstance(a, ast.Starred))
    kwnames = tuple(k.arg for k in node.keywords if k.arg is not None)
    return n_pos, kwnames


def _is_lock_ctor(node: ast.expr) -> bool:
    """``threading.Lock()`` / ``threading.RLock()`` / bare ``Lock()``."""
    if not isinstance(node, ast.Call):
        return False
    func = node.func
    name = func.attr if isinstance(func, ast.Attribute) else (
        func.id if isinstance(func, ast.Name) else None)
    return name in ("Lock", "RLock")


class _ModuleCollector(ast.NodeVisitor):
    """Walk one module, filling a :class:`ProjectGraph`'s tables."""

    def __init__(self, graph: ProjectGraph, path: str, source: str,
                 tree: ast.Module) -> None:
        self.graph = graph
        self.path = path
        self.tree = tree
        self.guards = _guard_annotations(source)
        self.class_stack: list[ClassInfo] = []
        self.is_pipeline_module = "pipelines" in path.replace("\\", "/")

    # -- structure ----------------------------------------------------------

    def run(self) -> None:
        self.visit(self.tree)

    def visit_ClassDef(self, node: ast.ClassDef) -> None:
        bases = []
        for b in node.bases:
            if isinstance(b, ast.Name):
                bases.append(b.id)
            elif isinstance(b, ast.Attribute):
                bases.append(b.attr)
            elif isinstance(b, ast.Subscript):
                # Generic[...] / Protocol[...] style bases.
                inner = b.value
                if isinstance(inner, ast.Name):
                    bases.append(inner.id)
                elif isinstance(inner, ast.Attribute):
                    bases.append(inner.attr)
        cls = ClassInfo(
            name=node.name, module=self.path, lineno=node.lineno,
            bases=tuple(bases), is_protocol="Protocol" in bases)
        # Class-level guarded-by declarations on annotated fields.
        for stmt in node.body:
            if (isinstance(stmt, ast.AnnAssign)
                    and isinstance(stmt.target, ast.Name)
                    and stmt.lineno in self.guards):
                cls.guarded[stmt.target.id] = self.guards[stmt.lineno]
                cls.guarded_lines[stmt.target.id] = stmt.lineno
        self.graph.classes.setdefault(node.name, []).append(cls)
        self.class_stack.append(cls)
        self.generic_visit(node)
        self.class_stack.pop()

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        self._function(node)

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        self._function(node)

    # -- function summary ---------------------------------------------------

    def _function(self, node: ast.FunctionDef | ast.AsyncFunctionDef) -> None:
        cls = self.class_stack[-1] if self.class_stack else None
        in_class = cls is not None
        qual = (f"{self.path}::{cls.name}.{node.name}" if cls is not None
                else f"{self.path}::{node.name}")
        info = FunctionInfo(
            qualname=qual, name=node.name,
            cls=cls.name if cls is not None else None,
            module=self.path, lineno=node.lineno,
            sig=_param_sig(node, drop_self=in_class),
            returns=tuple(_annotation_names(node.returns)),
        )
        info.is_root = self._is_root(node, cls)
        _BodyScanner(self, info, cls, node).run()
        self.graph.functions[qual] = info
        if cls is not None:
            # First definition wins (overloads/conditionals are rare).
            cls.methods.setdefault(node.name, info)
            self.graph.methods_by_name.setdefault(node.name, []).append(info)
        else:
            self.graph.module_funcs.setdefault(
                (self.path, node.name), info)
            self.graph.funcs_by_name.setdefault(node.name, []).append(info)
        # Decorated/nested defs keep their summaries; do not recurse here
        # (the body scanner already visited nested defs).

    def _is_root(self, node: ast.FunctionDef | ast.AsyncFunctionDef,
                 cls: ClassInfo | None) -> bool:
        """Experiment/pipeline entry points the purity rule anchors on."""
        if node.name in ("run_experiment", "run_all") and cls is None:
            return True
        if node.name == "run" and self.is_pipeline_module and cls is not None:
            return True
        # A function taking a Lab *itself* (not e.g. a ``Callable[[Lab],
        # ...]`` factory) is an experiment body wired into the registry.
        all_args = (*node.args.posonlyargs, *node.args.args,
                    *node.args.kwonlyargs)
        return any(_annotation_names(a.annotation) == ["Lab"]
                   for a in all_args)


class _BodyScanner(ast.NodeVisitor):
    """Scan one function body: calls, locks, writes, impurities."""

    def __init__(self, mod: _ModuleCollector, info: FunctionInfo,
                 cls: ClassInfo | None,
                 node: ast.FunctionDef | ast.AsyncFunctionDef) -> None:
        self.mod = mod
        self.info = info
        self.cls = cls
        self.node = node
        self.held: list[str] = []
        self._discarded_calls: set[int] = set()
        #: local name -> class name (constructor assignments, annotations).
        self.local_types: dict[str, str] = {}
        for a in (*node.args.posonlyargs, *node.args.args,
                  *node.args.kwonlyargs):
            for name in _annotation_names(a.annotation):
                if name[:1].isupper():
                    self.local_types[a.arg] = name
                    break

    def run(self) -> None:
        for stmt in self.node.body:
            self.visit(stmt)

    # -- lock identification ------------------------------------------------

    def _lock_id(self, expr: ast.expr) -> str | None:
        """Identity of a lock expression, or None if not lock-like."""
        if (isinstance(expr, ast.Attribute)
                and isinstance(expr.value, ast.Name)
                and expr.value.id == "self" and self.cls is not None):
            attr = expr.attr
            if attr in self.cls.lock_attrs or "lock" in attr.lower():
                return f"{self.cls.name}.{attr}"
            return None
        if isinstance(expr, ast.Name) and "lock" in expr.id.lower():
            return f"{self.info.module}::{expr.id}"
        return None

    def visit_With(self, node: ast.With) -> None:
        self._with(node)

    def visit_AsyncWith(self, node: ast.AsyncWith) -> None:
        self._with(node)

    def _with(self, node: ast.With | ast.AsyncWith) -> None:
        acquired: list[str] = []
        for item in node.items:
            self.visit(item.context_expr)
            lock = self._lock_id(item.context_expr)
            if lock is not None:
                self.info.lock_acqs.append(LockAcquisition(
                    lock=lock, held=tuple(self.held),
                    lineno=item.context_expr.lineno,
                    col=item.context_expr.col_offset))
                self.held.append(lock)
                acquired.append(lock)
            if item.optional_vars is not None:
                self.visit(item.optional_vars)
        for stmt in node.body:
            self.visit(stmt)
        for _ in acquired:
            self.held.pop()

    # -- attribute writes ---------------------------------------------------

    def _self_attr(self, expr: ast.expr) -> str | None:
        if (isinstance(expr, ast.Attribute)
                and isinstance(expr.value, ast.Name)
                and expr.value.id == "self"):
            return expr.attr
        return None

    def _record_write(self, attr: str, kind: str, node: ast.AST) -> None:
        self.info.writes.append(AttrWrite(
            attr=attr, kind=kind, held_locks=tuple(self.held),
            lineno=getattr(node, "lineno", self.node.lineno),
            col=getattr(node, "col_offset", 0)))

    def _scan_target(self, target: ast.expr, kind: str) -> None:
        attr = self._self_attr(target)
        if attr is not None:
            self._record_write(attr, kind, target)
            return
        if isinstance(target, ast.Subscript):
            attr = self._self_attr(target.value)
            if attr is not None:
                self._record_write(attr, "item", target)
            self.visit(target.value)
            self.visit(target.slice)
            return
        if isinstance(target, (ast.Tuple, ast.List)):
            for elt in target.elts:
                self._scan_target(elt, kind)
            return
        if isinstance(target, ast.Starred):
            self._scan_target(target.value, kind)
            return
        self.visit(target)

    def visit_Assign(self, node: ast.Assign) -> None:
        self.visit(node.value)
        # Type inference: x = ClassName(...) / self.x = ClassName(...),
        # plus ``self.x = param`` where the parameter is annotated.
        inferred = self._ctor_class(node.value)
        if inferred is None and isinstance(node.value, ast.Name):
            inferred = self.local_types.get(node.value.id)
        value_call = self._call_name(node.value)
        for target in node.targets:
            if isinstance(target, ast.Name):
                self.info.local_assigns.append(
                    (target.id, value_call, target.lineno, target.col_offset))
                if inferred is not None:
                    self.local_types[target.id] = inferred
                else:
                    self.local_types.pop(target.id, None)
            attr = self._self_attr(target)
            if attr is not None and self.cls is not None:
                if _is_lock_ctor(node.value):
                    self.cls.lock_attrs.add(attr)
                if inferred is not None:
                    self.cls.attr_types.setdefault(attr, inferred)
                if node.lineno in self.mod.guards:
                    self.cls.guarded.setdefault(
                        attr, self.mod.guards[node.lineno])
                    self.cls.guarded_lines.setdefault(attr, node.lineno)
            self._scan_target(target, "assign")

    def visit_AugAssign(self, node: ast.AugAssign) -> None:
        self.visit(node.value)
        if isinstance(node.target, ast.Name):
            # ``x += e`` reads x even though the target ctx is Store.
            self.info.loaded_names.add(node.target.id)
        self._scan_target(node.target, "augassign")

    def visit_AnnAssign(self, node: ast.AnnAssign) -> None:
        if node.value is not None:
            self.visit(node.value)
            attr = self._self_attr(node.target)
            if attr is not None and self.cls is not None:
                if _is_lock_ctor(node.value):
                    self.cls.lock_attrs.add(attr)
                inferred = (self._ctor_class(node.value)
                            or _outer_annotation_name(node.annotation))
                if inferred is not None:
                    self.cls.attr_types.setdefault(attr, inferred)
                if node.lineno in self.mod.guards:
                    self.cls.guarded.setdefault(
                        attr, self.mod.guards[node.lineno])
                    self.cls.guarded_lines.setdefault(attr, node.lineno)
            self._scan_target(node.target, "assign")
        if isinstance(node.target, ast.Name):
            for name in _annotation_names(node.annotation):
                if name[:1].isupper():
                    self.local_types[node.target.id] = name
                    break

    def _ctor_class(self, value: ast.expr) -> str | None:
        # Container literals type the receiver too: ``x = {}`` followed
        # by ``x.get(...)`` must not dynamically dispatch to a project
        # method that happens to be called ``get``.
        if isinstance(value, (ast.Dict, ast.DictComp)):
            return "dict"
        if isinstance(value, (ast.List, ast.ListComp)):
            return "list"
        if isinstance(value, (ast.Set, ast.SetComp)):
            return "set"
        name = self._call_name(value)
        if name in _BUILTIN_CONTAINER_CTORS:
            return name
        if name is not None and name[:1].isupper():
            return name
        return None

    @staticmethod
    def _call_name(value: ast.expr) -> str | None:
        if not isinstance(value, ast.Call):
            return None
        func = value.func
        return func.attr if isinstance(func, ast.Attribute) else (
            func.id if isinstance(func, ast.Name) else None)

    # -- calls and impurities ----------------------------------------------

    def _receiver_type(self, recv: ast.expr) -> str | None:
        if isinstance(recv, ast.Name):
            if recv.id == "self" and self.cls is not None:
                return self.cls.name
            return self.local_types.get(recv.id)
        attr = self._self_attr(recv)
        if attr is not None and self.cls is not None:
            return self.cls.attr_types.get(attr)
        if (isinstance(recv, ast.Call) and isinstance(recv.func, ast.Name)
                and recv.func.id == "super" and self.cls is not None
                and self.cls.bases):
            return self.cls.bases[0]
        return self._ctor_class(recv)

    def visit_Expr(self, node: ast.Expr) -> None:
        if isinstance(node.value, ast.Call):
            self._discarded_calls.add(id(node.value))
        self.generic_visit(node)

    def visit_Name(self, node: ast.Name) -> None:
        if isinstance(node.ctx, ast.Load):
            self.info.loaded_names.add(node.id)

    def visit_Call(self, node: ast.Call) -> None:
        self.generic_visit(node)
        n_pos, kwnames = _call_shape(node)
        discarded = id(node) in self._discarded_calls
        func = node.func
        if isinstance(func, ast.Attribute):
            recv_type = self._receiver_type(func.value)
            self.info.calls.append(CallSite(
                name=func.attr, is_attr=True, recv_type=recv_type,
                n_pos=n_pos, kwnames=kwnames, held_locks=tuple(self.held),
                lineno=node.lineno, col=node.col_offset,
                discarded=discarded))
            # An in-place mutation of a guarded container is a write.
            attr = self._self_attr(func.value)
            if attr is not None and func.attr in _MUTATOR_METHODS:
                self._record_write(attr, "mutcall", node)
            self._check_impure_attr_call(node, func)
        elif isinstance(func, ast.Name):
            self.info.calls.append(CallSite(
                name=func.id, is_attr=False, recv_type=None,
                n_pos=n_pos, kwnames=kwnames, held_locks=tuple(self.held),
                lineno=node.lineno, col=node.col_offset,
                discarded=discarded))
            self._check_impure_name_call(node, func)
        self._scan_thread_targets(node)

    def _callable_ref(self, expr: ast.expr) -> tuple[str, str] | None:
        """A handed-off callable as (kind, name), or None."""
        attr = self._self_attr(expr)
        if attr is not None:
            return ("self", attr)
        if isinstance(expr, ast.Name):
            return ("bare", expr.id)
        return None

    def _scan_thread_targets(self, node: ast.Call) -> None:
        """Record callables this call hands to another thread of control."""
        func = node.func
        fname = func.attr if isinstance(func, ast.Attribute) else (
            func.id if isinstance(func, ast.Name) else None)
        refs: list[tuple[str, str] | None] = []
        if fname == "submit" and isinstance(func, ast.Attribute) and node.args:
            # executor.submit(worker, ...): the worker runs on a pool thread.
            refs.append(self._callable_ref(node.args[0]))
        if fname in ("Thread", "Timer"):
            refs.extend(self._callable_ref(kw.value) for kw in node.keywords
                        if kw.arg == "target")
        # Pool initializers run once per worker, concurrently with the rest.
        refs.extend(self._callable_ref(kw.value) for kw in node.keywords
                    if kw.arg == "initializer")
        for ref in refs:
            if ref is not None:
                self.info.thread_targets.append((*ref, node.lineno))

    def _check_impure_attr_call(self, node: ast.Call,
                                func: ast.Attribute) -> None:
        recv = func.value
        mod_name = recv.id if isinstance(recv, ast.Name) else (
            recv.attr if isinstance(recv, ast.Attribute) else None)
        attr = func.attr
        if mod_name == "time" and attr in _WALL_CLOCK_TIME_ATTRS:
            self._impure(node, f"wall-clock call time.{attr}()")
        elif mod_name == "os" and attr == "urandom":
            self._impure(node, "entropy call os.urandom()")
        elif mod_name == "uuid" and attr in ("uuid1", "uuid4"):
            self._impure(node, f"entropy call uuid.{attr}()")
        elif mod_name == "secrets":
            self._impure(node, f"entropy call secrets.{attr}()")
        elif (mod_name in ("datetime", "date") and attr in _DATETIME_NOW_ATTRS):
            self._impure(node, f"wall-clock call {mod_name}.{attr}()")
        elif attr == "default_rng" and not node.args and not node.keywords:
            self._impure(
                node, "unseeded default_rng(); seed it from a named stream")

    def _check_impure_name_call(self, node: ast.Call, func: ast.Name) -> None:
        if func.id in _WALL_CLOCK_TIME_ATTRS and func.id != "time":
            # ``from time import perf_counter`` style; a bare ``time()``
            # is far more often a local helper than stdlib time.time.
            self._impure(node, f"wall-clock call {func.id}()")
        elif func.id == "urandom":
            self._impure(node, "entropy call urandom()")
        elif func.id == "default_rng" and not node.args and not node.keywords:
            self._impure(
                node, "unseeded default_rng(); seed it from a named stream")

    def _impure(self, node: ast.AST, reason: str) -> None:
        self.info.impurities.append(Impurity(
            reason=reason, lineno=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0)))

    # -- unordered iteration ------------------------------------------------

    def _unordered_source(self, expr: ast.expr) -> str | None:
        """Describe ``expr`` if its iteration order is hash/env-dependent."""
        if isinstance(expr, ast.Set):
            return "a set literal"
        if isinstance(expr, ast.Call):
            func = expr.func
            name = func.id if isinstance(func, ast.Name) else (
                func.attr if isinstance(func, ast.Attribute) else None)
            if name in _UNORDERED_PRODUCERS:
                return f"{name}()"
        if (isinstance(expr, ast.Attribute) and expr.attr == "environ"
                and isinstance(expr.value, ast.Name)
                and expr.value.id == "os"):
            return "os.environ"
        return None

    def _check_iteration(self, iter_expr: ast.expr) -> None:
        src = self._unordered_source(iter_expr)
        if src is not None:
            self._impure(
                iter_expr,
                f"iteration over {src} is hash-order dependent; "
                f"sort or use an ordered container")

    def visit_For(self, node: ast.For) -> None:
        self._check_iteration(node.iter)
        self.generic_visit(node)

    def visit_AsyncFor(self, node: ast.AsyncFor) -> None:
        self._check_iteration(node.iter)
        self.generic_visit(node)

    def visit_comprehension(self, node: ast.comprehension) -> None:
        self._check_iteration(node.iter)
        self.generic_visit(node)

    # Nested defs get their own FunctionInfo via the module collector.
    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        self.mod._function(node)

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        self.mod._function(node)

    def visit_ClassDef(self, node: ast.ClassDef) -> None:
        self.mod.visit_ClassDef(node)

    def visit_Lambda(self, node: ast.Lambda) -> None:
        self.visit(node.body)


# ---------------------------------------------------------------------------
# The graph
# ---------------------------------------------------------------------------

@dataclass
class ModuleSummary:
    """One module's contribution to the project tables.

    Pure function of the module's source text, which makes it the unit
    the incremental lint cache (:mod:`repro.lint.cache`) persists: a
    cache hit merges the pickled summary instead of re-walking the AST.
    """

    path: str
    functions: dict[str, FunctionInfo] = field(default_factory=dict)
    classes: dict[str, list[ClassInfo]] = field(default_factory=dict)
    methods_by_name: dict[str, list[FunctionInfo]] = field(
        default_factory=dict)
    funcs_by_name: dict[str, list[FunctionInfo]] = field(default_factory=dict)
    module_funcs: dict[tuple[str, str], FunctionInfo] = field(
        default_factory=dict)


def summarize_module(path: str, source: str, tree: ast.Module,
                     ) -> ModuleSummary:
    """Collect one module's function/class summaries in isolation."""
    scratch = ProjectGraph()
    _ModuleCollector(scratch, path, source, tree).run()
    return ModuleSummary(
        path=path,
        functions=scratch.functions,
        classes=scratch.classes,
        methods_by_name=scratch.methods_by_name,
        funcs_by_name=scratch.funcs_by_name,
        module_funcs=scratch.module_funcs,
    )


class ProjectGraph:
    """Project-wide function/class tables plus memoized analyses."""

    def __init__(self) -> None:
        self.functions: dict[str, FunctionInfo] = {}
        self.classes: dict[str, list[ClassInfo]] = {}
        self.methods_by_name: dict[str, list[FunctionInfo]] = {}
        self.funcs_by_name: dict[str, list[FunctionInfo]] = {}
        self.module_funcs: dict[tuple[str, str], FunctionInfo] = {}
        self._callees: dict[str, tuple[str, ...]] = {}
        self._reachable: frozenset[str] | None = None
        self._transitive_locks: dict[str, frozenset[str]] | None = None
        self._lock_edges: (
            dict[tuple[str, str], list[tuple[str, int, int, str]]] | None
        ) = None

    # -- construction -------------------------------------------------------

    @classmethod
    def build(cls, modules: Iterable[ModuleContext]) -> ProjectGraph:
        return cls.from_summaries(
            summarize_module(ctx.path, ctx.source, ctx.tree)
            for ctx in modules)

    @classmethod
    def from_summaries(cls, summaries: Iterable[ModuleSummary],
                       ) -> ProjectGraph:
        """Merge per-module summaries (fresh or cache-loaded) into a graph."""
        graph = cls()
        for s in summaries:
            graph.functions.update(s.functions)
            for name, infos in s.classes.items():
                graph.classes.setdefault(name, []).extend(infos)
            for name, infos in s.methods_by_name.items():
                graph.methods_by_name.setdefault(name, []).extend(infos)
            for name, infos in s.funcs_by_name.items():
                graph.funcs_by_name.setdefault(name, []).extend(infos)
            for key, info in s.module_funcs.items():
                graph.module_funcs.setdefault(key, info)
        return graph

    # -- class helpers ------------------------------------------------------

    def iter_classes(self) -> Iterator[ClassInfo]:
        for infos in self.classes.values():
            yield from infos

    def class_method(self, cls: ClassInfo,
                     name: str) -> FunctionInfo | None:
        """Method ``name`` on ``cls`` or (project-known) bases, depth-first."""
        seen: set[str] = set()
        stack = [cls]
        while stack:
            c = stack.pop(0)
            if c.name in seen:
                continue
            seen.add(c.name)
            if name in c.methods:
                return c.methods[name]
            for base in c.bases:
                stack.extend(self.classes.get(base, []))
        return None

    def mro_has_method(self, cls: ClassInfo, name: str) -> bool:
        return self.class_method(cls, name) is not None

    # -- call resolution ----------------------------------------------------

    def resolve(self, caller: FunctionInfo,
                site: CallSite) -> list[FunctionInfo]:
        """Project functions a call site may dispatch to."""
        if site.is_attr:
            found: list[FunctionInfo] = []
            if site.recv_type is not None:
                candidates = self.classes.get(site.recv_type, [])
                for cls in candidates:
                    m = self.class_method(cls, site.name)
                    if m is not None:
                        found.append(m)
                if not any(cls.is_protocol for cls in candidates):
                    # A typed receiver is authoritative: a builtin or
                    # out-of-project type means the call cannot land in
                    # project code, so no dynamic-dispatch fallback.
                    return found
            # Untyped or Protocol-typed receiver: signature-compatible
            # dynamic dispatch over every project callable of that name
            # (protocol implementations stay visible; incompatible
            # same-name methods are excluded).
            seen = {m.qualname for m in found}
            out = found + [
                m for m in self.methods_by_name.get(site.name, ())
                if m.qualname not in seen
                and m.sig.accepts(site.n_pos, site.kwnames)]
            out += [f for f in self.funcs_by_name.get(site.name, ())
                    if f.sig.accepts(site.n_pos, site.kwnames)]
            return out
        # Bare name: same module first, then a unique project-wide name,
        # then a class constructor.
        local = self.module_funcs.get((caller.module, site.name))
        if local is not None:
            return [local]
        funcs = self.funcs_by_name.get(site.name, [])
        if len(funcs) == 1:
            return list(funcs)
        ctors: list[FunctionInfo] = []
        for cls in self.classes.get(site.name, []):
            init = self.class_method(cls, "__init__")
            if init is not None:
                ctors.append(init)
        return ctors

    def callees(self, qualname: str) -> tuple[str, ...]:
        """Memoized resolved callee qualnames of one function."""
        cached = self._callees.get(qualname)
        if cached is None:
            info = self.functions[qualname]
            names = sorted({t.qualname for site in info.calls
                            for t in self.resolve(info, site)})
            cached = self._callees[qualname] = tuple(names)
        return cached

    # -- analyses -----------------------------------------------------------

    def reachable_from_roots(self) -> frozenset[str]:
        """Qualnames reachable from experiment/pipeline roots (memoized)."""
        if self._reachable is None:
            seen: set[str] = set()
            frontier = [q for q, f in self.functions.items() if f.is_root]
            while frontier:
                qual = frontier.pop()
                if qual in seen:
                    continue
                seen.add(qual)
                frontier.extend(q for q in self.callees(qual)
                                if q not in seen)
            self._reachable = frozenset(seen)
        return self._reachable

    def root_path_to(self, qualname: str) -> tuple[str, ...]:
        """A shortest root→function call chain, for diagnostics."""
        parents: dict[str, str | None] = {
            q: None for q, f in self.functions.items() if f.is_root}
        frontier = sorted(parents)
        while frontier:
            nxt: list[str] = []
            for qual in frontier:
                if qual == qualname:
                    chain = [qual]
                    while parents[chain[-1]] is not None:
                        chain.append(parents[chain[-1]])  # type: ignore[arg-type]
                    return tuple(reversed(chain))
                for callee in self.callees(qual):
                    if callee not in parents:
                        parents[callee] = qual
                        nxt.append(callee)
            frontier = nxt
        return ()

    def transitive_locks(self) -> dict[str, frozenset[str]]:
        """Locks each function may acquire, directly or via callees."""
        if self._transitive_locks is None:
            locks: dict[str, set[str]] = {
                q: {a.lock for a in f.lock_acqs}
                for q, f in self.functions.items()}
            changed = True
            while changed:
                changed = False
                for qual in self.functions:
                    mine = locks[qual]
                    before = len(mine)
                    for callee in self.callees(qual):
                        mine |= locks.get(callee, set())
                    if len(mine) != before:
                        changed = True
            self._transitive_locks = {
                q: frozenset(s) for q, s in locks.items()}
        return self._transitive_locks

    def lock_order_edges(
            self) -> dict[tuple[str, str], list[tuple[str, int, int, str]]]:
        """Observed lock orders: (outer, inner) -> witness sites.

        An edge exists when ``inner`` is acquired — directly, or
        transitively through a call — while ``outer`` is held.  A
        self-edge ``(L, L)`` means a non-reentrant lock may be
        re-acquired while held (a self-deadlock).  Sites are
        ``(module, line, col, holder qualname)``.
        """
        if self._lock_edges is None:
            edges: dict[tuple[str, str], list[tuple[str, int, int, str]]] = {}

            def witness(outer: str, inner: str, module: str, lineno: int,
                        col: int, qual: str) -> None:
                edges.setdefault((outer, inner), []).append(
                    (module, lineno, col, qual))

            trans = self.transitive_locks()
            for qual in sorted(self.functions):
                f = self.functions[qual]
                for acq in f.lock_acqs:
                    for outer in acq.held:
                        witness(outer, acq.lock, f.module,
                                acq.lineno, acq.col, qual)
                for site in f.calls:
                    if not site.held_locks:
                        continue
                    inner_locks: set[str] = set()
                    for target in self.resolve(f, site):
                        inner_locks |= trans.get(target.qualname, frozenset())
                    for inner in sorted(inner_locks):
                        for outer in site.held_locks:
                            witness(outer, inner, f.module,
                                    site.lineno, site.col, qual)
            self._lock_edges = edges
        return self._lock_edges

    def lock_cycles(self) -> list[tuple[str, ...]]:
        """Lock-order cycles (each a tuple of lock ids), deterministic."""
        edges = self.lock_order_edges()
        adj: dict[str, set[str]] = {}
        for (outer, inner) in edges:
            adj.setdefault(outer, set()).add(inner)
            adj.setdefault(inner, set())
        cycles: list[tuple[str, ...]] = []
        seen_cycles: set[frozenset[str]] = set()
        for start in sorted(adj):
            if (start, start) in edges:
                key = frozenset((start,))
                if key not in seen_cycles:
                    seen_cycles.add(key)
                    cycles.append((start,))
            # Bounded DFS for cycles through ``start`` (lock graphs are
            # tiny; this is exact and deterministic).
            stack: list[tuple[str, tuple[str, ...]]] = [(start, (start,))]
            while stack:
                node, path = stack.pop()
                for nxt in sorted(adj.get(node, ()), reverse=True):
                    if nxt == start and len(path) > 1:
                        key = frozenset(path)
                        if key not in seen_cycles:
                            seen_cycles.add(key)
                            cycles.append(path)
                    elif nxt not in path and len(path) < 8:
                        stack.append((nxt, path + (nxt,)))
        return cycles
