"""The greenlint rule families (GL1–GL5).

Each rule is a function from a :class:`~repro.lint.engine.ModuleContext`
to an iterable of findings, registered with the :func:`~repro.lint.engine.rule`
decorator.  The rules encode the conventions the reproduction's physics
depends on:

GL1
    Unit-suffix consistency.  A small dimension-inference layer (see
    :mod:`repro.lint.dims`) propagates quantity suffixes through locals,
    parameters, attribute accesses and calls, and flags arithmetic,
    comparisons, assignments, returns and keyword arguments that mix
    incompatible quantities (adding watts to joules, assigning a
    seconds expression to a ``*_bytes`` name, ...).  Products and
    quotients follow the physics: ``idle_w + energy_per_byte_j *
    dram_bytes_per_s`` is dimensionally sound (E/D · D/T = W).
GL2
    Magic unit constants.  Numeric literals that shadow constants
    exported by :mod:`repro.units` (``1024``, ``3600``, ``2**16``,
    ``1 << 30``, ``1e3``...) must be spelled via the named constant.
GL3
    Exception hygiene.  Every ``raise`` must raise a
    :class:`~repro.errors.ReproError` subclass; bare ``except:`` is
    forbidden.
GL4
    Determinism.  No direct ``random`` / ``numpy.random`` use outside
    :mod:`repro.rng`; randomness must come from named streams.
GL5
    Energy-accounting call contracts.  A call to a function or
    constructor with two or more quantity-suffixed parameters must pass
    those parameters as keywords, so positional joule/watt swaps are
    impossible.
"""

from __future__ import annotations

import ast
import builtins
from typing import Iterator

from repro import units as _units
from repro.lint.dims import (
    DIMENSIONLESS,
    Dim,
    dim_name,
    div,
    mul,
    pow_,
    suffix_dim,
)
from repro.lint.engine import Finding, ModuleContext, rule

# ---------------------------------------------------------------------------
# GL1: unit-suffix consistency
# ---------------------------------------------------------------------------

_CHECKED_CMPOPS = (ast.Lt, ast.LtE, ast.Gt, ast.GtE, ast.Eq, ast.NotEq)


def _known(d: Dim | None) -> bool:
    """True for dims that participate in mismatch checks."""
    return d is not None and d != DIMENSIONLESS


class _UnitChecker:
    """Flow-insensitive, scope-aware dimension inference over one module."""

    def __init__(self, ctx: ModuleContext) -> None:
        self.ctx = ctx
        self.findings: list[Finding] = []

    # -- plumbing -----------------------------------------------------------

    def flag(self, node: ast.AST, message: str) -> None:
        self.findings.append(Finding(
            code="GL1", severity="error", path=self.ctx.path,
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0), message=message))

    def name_dim(self, name: str, env: dict) -> Dim | None:
        sd = suffix_dim(name)
        if sd is not None:
            return sd
        return env.get(name)

    # -- expression inference ----------------------------------------------

    def infer(self, node: ast.expr | None, env: dict) -> Dim | None:
        if node is None:
            return None
        if isinstance(node, ast.Constant):
            if isinstance(node.value, bool):
                return None
            if isinstance(node.value, (int, float)):
                return DIMENSIONLESS
            return None
        if isinstance(node, ast.Name):
            return self.name_dim(node.id, env)
        if isinstance(node, ast.Attribute):
            self.infer(node.value, env)
            return suffix_dim(node.attr)
        if isinstance(node, ast.Subscript):
            d = self.infer(node.value, env)
            self.infer(node.slice, env)
            return d
        if isinstance(node, ast.BinOp):
            return self._binop(node, env)
        if isinstance(node, ast.UnaryOp):
            d = self.infer(node.operand, env)
            return d if isinstance(node.op, (ast.USub, ast.UAdd)) else None
        if isinstance(node, ast.BoolOp):
            for v in node.values:
                self.infer(v, env)
            return None
        if isinstance(node, ast.Compare):
            return self._compare(node, env)
        if isinstance(node, ast.Call):
            return self._call(node, env)
        if isinstance(node, ast.IfExp):
            self.infer(node.test, env)
            body = self.infer(node.body, env)
            orelse = self.infer(node.orelse, env)
            return body if body == orelse else None
        if isinstance(node, (ast.Tuple, ast.List, ast.Set)):
            for elt in node.elts:
                self.infer(elt, env)
            return None
        if isinstance(node, ast.Dict):
            for k in node.keys:
                if k is not None:
                    self.infer(k, env)
            for v in node.values:
                self.infer(v, env)
            return None
        if isinstance(node, (ast.ListComp, ast.SetComp, ast.GeneratorExp)):
            self._comprehension(node.generators, env)
            self.infer(node.elt, env)
            return None
        if isinstance(node, ast.DictComp):
            self._comprehension(node.generators, env)
            self.infer(node.key, env)
            self.infer(node.value, env)
            return None
        if isinstance(node, ast.Lambda):
            self.infer(node.body, dict(env))
            return None
        if isinstance(node, ast.JoinedStr):
            for v in node.values:
                if isinstance(v, ast.FormattedValue):
                    self.infer(v.value, env)
            return None
        if isinstance(node, ast.Starred):
            return self.infer(node.value, env)
        if isinstance(node, (ast.Await, ast.YieldFrom)):
            return self.infer(node.value, env)
        if isinstance(node, ast.Yield):
            if node.value is not None:
                self.infer(node.value, env)
            return None
        if isinstance(node, ast.Slice):
            for part in (node.lower, node.upper, node.step):
                if part is not None:
                    self.infer(part, env)
            return None
        if isinstance(node, ast.NamedExpr):
            d = self.infer(node.value, env)
            self._assign_target(node.target, d, env)
            return d
        return None

    def _comprehension(self, generators: list, env: dict) -> None:
        for gen in generators:
            self.infer(gen.iter, env)
            self._clear_target(gen.target, env)
            for cond in gen.ifs:
                self.infer(cond, env)

    def _binop(self, node: ast.BinOp, env: dict) -> Dim | None:
        left = self.infer(node.left, env)
        right = self.infer(node.right, env)
        op = node.op
        if isinstance(op, (ast.Add, ast.Sub)):
            if _known(left) and _known(right) and left != right:
                verb = "adding" if isinstance(op, ast.Add) else "subtracting"
                self.flag(node, f"{verb} {dim_name(right)} "
                                f"{'to' if isinstance(op, ast.Add) else 'from'} "
                                f"{dim_name(left)}")
            if left is None or right is None:
                return None
            return right if left == DIMENSIONLESS else left
        if left is None or right is None:
            if isinstance(op, ast.Pow) and left == DIMENSIONLESS:
                return DIMENSIONLESS
            return None
        if isinstance(op, ast.Mult):
            return mul(left, right)
        if isinstance(op, (ast.Div, ast.FloorDiv)):
            return div(left, right)
        if isinstance(op, ast.Mod):
            return left
        if isinstance(op, ast.Pow):
            if left == DIMENSIONLESS:
                return DIMENSIONLESS
            if (isinstance(node.right, ast.Constant)
                    and isinstance(node.right.value, int)
                    and abs(node.right.value) <= 8):
                return pow_(left, node.right.value)
            return None
        return None

    def _compare(self, node: ast.Compare, env: dict) -> None:
        dims = [self.infer(node.left, env)]
        dims += [self.infer(c, env) for c in node.comparators]
        for a, op, b in zip(dims, node.ops, dims[1:]):
            if (isinstance(op, _CHECKED_CMPOPS)
                    and _known(a) and _known(b) and a != b):
                self.flag(node, f"comparing {dim_name(a)} with {dim_name(b)}")
        return None

    def _call(self, node: ast.Call, env: dict) -> Dim | None:
        func = node.func
        fname: str | None = None
        if isinstance(func, ast.Attribute):
            self.infer(func.value, env)
            fname = func.attr
        elif isinstance(func, ast.Name):
            fname = func.id
        else:
            self.infer(func, env)
        argdims = [self.infer(a, env) for a in node.args]
        for kw in node.keywords:
            value_dim = self.infer(kw.value, env)
            if kw.arg is None:
                continue
            kw_dim = suffix_dim(kw.arg)
            if kw_dim is not None and _known(value_dim) and value_dim != kw_dim:
                self.flag(kw.value,
                          f"keyword {kw.arg}= expects {dim_name(kw_dim)} "
                          f"but receives {dim_name(value_dim)}")
        if fname in ("abs", "float", "round"):
            return argdims[0] if argdims else None
        if fname in ("min", "max", "sum") and len(argdims) >= 2:
            known = [d for d in argdims if _known(d)]
            for a, b in zip(known, known[1:]):
                if a != b:
                    self.flag(node, f"{fname}() mixes {dim_name(a)} "
                                    f"and {dim_name(b)}")
            if known:
                return known[0]
            if argdims and all(d == DIMENSIONLESS for d in argdims):
                return DIMENSIONLESS
            return None
        if fname is not None:
            return suffix_dim(fname)
        return None

    # -- statements ---------------------------------------------------------

    def run(self) -> list[Finding]:
        self.exec_body(self.ctx.tree.body, {}, None)
        return self.findings

    def exec_body(self, body: list, env: dict,
                  ret_dim: Dim | None) -> None:
        for stmt in body:
            self.exec_stmt(stmt, env, ret_dim)

    def exec_stmt(self, stmt: ast.stmt, env: dict,
                  ret_dim: Dim | None) -> None:
        if isinstance(stmt, ast.Expr):
            self.infer(stmt.value, env)
        elif isinstance(stmt, ast.Assign):
            d = self.infer(stmt.value, env)
            for target in stmt.targets:
                self._assign_target(target, d, env)
        elif isinstance(stmt, ast.AnnAssign):
            if stmt.value is not None:
                d = self.infer(stmt.value, env)
                self._assign_target(stmt.target, d, env)
        elif isinstance(stmt, ast.AugAssign):
            target_dim = self.infer(stmt.target, env)
            value_dim = self.infer(stmt.value, env)
            if (isinstance(stmt.op, (ast.Add, ast.Sub))
                    and _known(target_dim) and _known(value_dim)
                    and target_dim != value_dim):
                self.flag(stmt, f"augmenting {dim_name(target_dim)} "
                                f"with {dim_name(value_dim)}")
        elif isinstance(stmt, ast.Return):
            if stmt.value is not None:
                d = self.infer(stmt.value, env)
                if ret_dim is not None and _known(d) and d != ret_dim:
                    self.flag(stmt, f"function declares {dim_name(ret_dim)} "
                                    f"by suffix but returns {dim_name(d)}")
        elif isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
            for dec in stmt.decorator_list:
                self.infer(dec, env)
            args = stmt.args
            for default in (*args.defaults,
                            *(d for d in args.kw_defaults if d is not None)):
                self.infer(default, env)
            self.exec_body(stmt.body, {}, suffix_dim(stmt.name))
        elif isinstance(stmt, ast.ClassDef):
            for dec in stmt.decorator_list:
                self.infer(dec, env)
            for base in stmt.bases:
                self.infer(base, env)
            self.exec_body(stmt.body, {}, None)
        elif isinstance(stmt, ast.If):
            self.infer(stmt.test, env)
            self.exec_body(stmt.body, env, ret_dim)
            self.exec_body(stmt.orelse, env, ret_dim)
        elif isinstance(stmt, ast.While):
            self.infer(stmt.test, env)
            self.exec_body(stmt.body, env, ret_dim)
            self.exec_body(stmt.orelse, env, ret_dim)
        elif isinstance(stmt, (ast.For, ast.AsyncFor)):
            self.infer(stmt.iter, env)
            self._clear_target(stmt.target, env)
            self.exec_body(stmt.body, env, ret_dim)
            self.exec_body(stmt.orelse, env, ret_dim)
        elif isinstance(stmt, (ast.With, ast.AsyncWith)):
            for item in stmt.items:
                self.infer(item.context_expr, env)
                if item.optional_vars is not None:
                    self._clear_target(item.optional_vars, env)
            self.exec_body(stmt.body, env, ret_dim)
        elif isinstance(stmt, ast.Try):
            self.exec_body(stmt.body, env, ret_dim)
            for handler in stmt.handlers:
                if handler.type is not None:
                    self.infer(handler.type, env)
                self.exec_body(handler.body, env, ret_dim)
            self.exec_body(stmt.orelse, env, ret_dim)
            self.exec_body(stmt.finalbody, env, ret_dim)
        elif isinstance(stmt, ast.Raise):
            if stmt.exc is not None:
                self.infer(stmt.exc, env)
            if stmt.cause is not None:
                self.infer(stmt.cause, env)
        elif isinstance(stmt, ast.Assert):
            self.infer(stmt.test, env)
            if stmt.msg is not None:
                self.infer(stmt.msg, env)
        elif isinstance(stmt, ast.Delete):
            for target in stmt.targets:
                if isinstance(target, ast.Name):
                    env.pop(target.id, None)
        elif isinstance(stmt, ast.Match):
            self.infer(stmt.subject, env)
            for case in stmt.cases:
                if case.guard is not None:
                    self.infer(case.guard, env)
                self.exec_body(case.body, env, ret_dim)
        # Import/Global/Nonlocal/Pass/Break/Continue carry no dimensions.

    def _assign_target(self, target: ast.expr, d: Dim | None,
                       env: dict) -> None:
        if isinstance(target, ast.Name):
            declared = suffix_dim(target.id)
            if declared is not None:
                if _known(d) and d != declared:
                    self.flag(target,
                              f"assigning {dim_name(d)} expression to "
                              f"'{target.id}' ({dim_name(declared)})")
                env[target.id] = declared
            else:
                env[target.id] = d
        elif isinstance(target, ast.Attribute):
            self.infer(target.value, env)
            declared = suffix_dim(target.attr)
            if declared is not None and _known(d) and d != declared:
                self.flag(target,
                          f"assigning {dim_name(d)} expression to attribute "
                          f"'{target.attr}' ({dim_name(declared)})")
        elif isinstance(target, ast.Subscript):
            container = self.infer(target.value, env)
            self.infer(target.slice, env)
            if _known(container) and _known(d) and container != d:
                self.flag(target,
                          f"storing {dim_name(d)} into a "
                          f"{dim_name(container)} container")
        elif isinstance(target, (ast.Tuple, ast.List)):
            for elt in target.elts:
                self._assign_target(elt, None, env)
        elif isinstance(target, ast.Starred):
            self._assign_target(target.value, None, env)

    def _clear_target(self, target: ast.expr, env: dict) -> None:
        self._assign_target(target, None, env)


@rule("GL1", "unit-suffix consistency")
def check_units(ctx: ModuleContext) -> Iterator[Finding]:
    """Arithmetic/comparison/assignment must not mix quantity suffixes."""
    return iter(_UnitChecker(ctx).run())


# ---------------------------------------------------------------------------
# GL2: magic unit constants
# ---------------------------------------------------------------------------

#: Literals (int or float spelling) that must come from repro.units.
_MAGIC_ANY: dict[int, str] = {
    int(_units.KiB): "KiB",
    int(_units.MiB): "MiB",
    int(_units.GiB): "GiB",
    int(_units.TiB): "TiB",
    int(_units.HOUR): "HOUR",
    int(round(1.0 / _units.RAPL_ENERGY_UNIT_J)): "1 / RAPL_ENERGY_UNIT_J",
}

#: Literals banned only in float spelling (the int spelling is a common
#: honest count: ``for _ in range(1000)``).
_MAGIC_FLOAT: dict[float, str] = {
    float(_units.KJ): "KJ (or KB)",
    float(_units.MJ): "MJ (or MB, MHZ)",
    float(_units.GHZ): "GHZ (or GB)",
    float(_units.MINUTE): "MINUTE",
    float(_units.MS): "MS",
    float(_units.US): "US",
}


def _const_expr_value(node: ast.BinOp) -> int | None:
    """Evaluate small constant ``a ** b`` / ``a << b`` expressions."""
    if not (isinstance(node.left, ast.Constant)
            and isinstance(node.right, ast.Constant)
            and isinstance(node.left.value, int)
            and isinstance(node.right.value, int)):
        return None
    a, b = node.left.value, node.right.value
    if not 0 <= b <= 64 or abs(a) > 4096:
        return None
    if isinstance(node.op, ast.Pow):
        return a ** b
    if isinstance(node.op, ast.LShift):
        return a << b
    return None


@rule("GL2", "magic unit constants", severity="warning",
      exempt_files=("units.py",))
def check_magic_constants(ctx: ModuleContext) -> Iterator[Finding]:
    """Numeric literals shadowing repro.units constants are banned."""
    findings: list[Finding] = []

    def visit(node: ast.AST) -> None:
        if isinstance(node, ast.BinOp):
            value = _const_expr_value(node)
            if value is not None and value in _MAGIC_ANY:
                findings.append(Finding(
                    code="GL2", severity="warning", path=ctx.path,
                    line=node.lineno, col=node.col_offset,
                    message=f"constant expression (= {value}) shadows "
                            f"repro.units.{_MAGIC_ANY[value]}"))
                return  # don't also flag the literal operands
        if isinstance(node, ast.Constant) and not isinstance(node.value, bool):
            value = node.value
            if isinstance(value, int) and value in _MAGIC_ANY:
                findings.append(Finding(
                    code="GL2", severity="warning", path=ctx.path,
                    line=node.lineno, col=node.col_offset,
                    message=f"magic literal {value} shadows "
                            f"repro.units.{_MAGIC_ANY[value]}"))
            elif isinstance(value, float):
                if value in _MAGIC_ANY:
                    findings.append(Finding(
                        code="GL2", severity="warning", path=ctx.path,
                        line=node.lineno, col=node.col_offset,
                        message=f"magic literal {value} shadows "
                                f"repro.units.{_MAGIC_ANY[int(value)]}"))
                elif value in _MAGIC_FLOAT:
                    findings.append(Finding(
                        code="GL2", severity="warning", path=ctx.path,
                        line=node.lineno, col=node.col_offset,
                        message=f"magic literal {value} shadows "
                                f"repro.units.{_MAGIC_FLOAT[value]}"))
        for child in ast.iter_child_nodes(node):
            visit(child)

    visit(ctx.tree)
    return iter(findings)


# ---------------------------------------------------------------------------
# GL3: exception hygiene
# ---------------------------------------------------------------------------

_BUILTIN_EXCEPTIONS = frozenset(
    name for name in dir(builtins)
    if isinstance(getattr(builtins, name), type)
    and issubclass(getattr(builtins, name), BaseException)
)


def _exception_name(exc: ast.expr) -> str | None:
    target = exc.func if isinstance(exc, ast.Call) else exc
    if isinstance(target, ast.Name):
        return target.id
    if isinstance(target, ast.Attribute):
        return target.attr
    return None


@rule("GL3", "exception hygiene")
def check_exceptions(ctx: ModuleContext) -> Iterator[Finding]:
    """Raises must use the ReproError hierarchy; bare except is banned."""
    findings: list[Finding] = []
    for node in ast.walk(ctx.tree):
        if isinstance(node, ast.Raise) and node.exc is not None:
            name = _exception_name(node.exc)
            if (name is not None
                    and name not in ctx.project.error_classes
                    and name in _BUILTIN_EXCEPTIONS):
                findings.append(Finding(
                    code="GL3", severity="error", path=ctx.path,
                    line=node.lineno, col=node.col_offset,
                    message=f"raises builtin {name}; raise a ReproError "
                            f"subclass from repro.errors instead"))
        elif isinstance(node, ast.ExceptHandler) and node.type is None:
            findings.append(Finding(
                code="GL3", severity="error", path=ctx.path,
                line=node.lineno, col=node.col_offset,
                message="bare 'except:' swallows everything; "
                        "catch a specific exception type"))
    return iter(findings)


# ---------------------------------------------------------------------------
# GL4: determinism
# ---------------------------------------------------------------------------

#: numpy.random attributes that are types (dependency-injection surface),
#: not draws — annotating a parameter as np.random.Generator is the
#: pattern repro.rng *wants*.
_ALLOWED_NUMPY_RANDOM = frozenset({"Generator", "BitGenerator", "SeedSequence"})


@rule("GL4", "determinism", exempt_files=("rng.py",))
def check_determinism(ctx: ModuleContext) -> Iterator[Finding]:
    """All randomness must flow through repro.rng named streams."""
    findings: list[Finding] = []
    numpy_aliases: set[str] = set()

    def flag(node: ast.AST, message: str) -> None:
        findings.append(Finding(
            code="GL4", severity="error", path=ctx.path,
            line=node.lineno, col=node.col_offset, message=message))

    for node in ast.walk(ctx.tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                if alias.name == "numpy":
                    numpy_aliases.add(alias.asname or "numpy")
                elif alias.name == "random":
                    flag(node, "imports stdlib random; use repro.rng "
                               "named streams instead")
                elif alias.name.startswith("numpy.random"):
                    flag(node, "imports numpy.random directly; use "
                               "repro.rng named streams instead")
        elif isinstance(node, ast.ImportFrom):
            if node.module == "random":
                flag(node, "imports from stdlib random; use repro.rng "
                           "named streams instead")
            elif node.module == "numpy.random":
                bad = [a.name for a in node.names
                       if a.name not in _ALLOWED_NUMPY_RANDOM]
                if bad:
                    flag(node, f"imports {', '.join(bad)} from numpy.random; "
                               f"use repro.rng named streams instead")
            elif node.module == "numpy":
                if any(a.name == "random" for a in node.names):
                    flag(node, "imports numpy.random directly; use "
                               "repro.rng named streams instead")

    for node in ast.walk(ctx.tree):
        if (isinstance(node, ast.Attribute)
                and node.attr not in _ALLOWED_NUMPY_RANDOM
                and isinstance(node.value, ast.Attribute)
                and node.value.attr == "random"
                and isinstance(node.value.value, ast.Name)
                and node.value.value.id in numpy_aliases):
            flag(node, f"numpy.random.{node.attr} bypasses repro.rng "
                       f"determinism; draw from a named stream")
    findings.sort(key=Finding.sort_key)
    return iter(findings)


# ---------------------------------------------------------------------------
# GL5: energy-accounting call contracts
# ---------------------------------------------------------------------------

@rule("GL5", "energy-accounting call contract")
def check_call_contracts(ctx: ModuleContext) -> Iterator[Finding]:
    """Quantity-suffixed parameters must be passed as keywords."""
    findings: list[Finding] = []

    class Visitor(ast.NodeVisitor):
        def __init__(self) -> None:
            self.class_stack: list[str] = []

        def visit_ClassDef(self, node: ast.ClassDef) -> None:
            self.class_stack.append(node.name)
            self.generic_visit(node)
            self.class_stack.pop()

        def visit_Call(self, node: ast.Call) -> None:
            self.generic_visit(node)
            func = node.func
            if isinstance(func, ast.Name):
                fname = func.id
            elif isinstance(func, ast.Attribute):
                fname = func.attr
            else:
                return
            if fname == "cls" and self.class_stack:
                fname = self.class_stack[-1]
            sig = ctx.project.unique_signature(fname)
            if sig is None or sig.has_vararg:
                return
            if any(isinstance(a, ast.Starred) for a in node.args):
                return
            suffixed = [i for i, p in enumerate(sig.params)
                        if suffix_dim(p) is not None]
            if len(suffixed) < 2:
                return
            for i, arg in enumerate(node.args):
                if i in suffixed:
                    findings.append(Finding(
                        code="GL5", severity="error", path=ctx.path,
                        line=arg.lineno, col=arg.col_offset,
                        message=f"argument {i + 1} of {fname}() fills "
                                f"quantity parameter {sig.params[i]!r} "
                                f"positionally; pass it as a keyword"))

    Visitor().visit(ctx.tree)
    return iter(findings)
