"""Byte-addressable non-volatile memory model (future-work extension).

Models an NVRAM tier of the kind Gamell et al. [26] evaluate for deep
memory hierarchies: DRAM-class bandwidth with sub-microsecond latency and
asymmetric read/write cost.  Exposes the block-device servicing interface
so the storage stack can target it directly (e.g. staging simulation
output in NVRAM instead of spinning disk).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import DeviceError
from repro.machine.disk import DiskRequest, DiskResult, OpKind
from repro.units import GiB, US


@dataclass(frozen=True)
class NvramSpec:
    """NVRAM device specification and power coefficients."""
    model: str = "NVDIMM (PCM-class)"
    capacity_bytes: int = 64 * GiB
    seq_read_bw: float = 6.0e9
    seq_write_bw: float = 2.0e9
    read_latency_s: float = 0.3 * US
    write_latency_s: float = 1.0 * US
    idle_w: float = 1.5
    read_energy_per_byte_j: float = 0.5e-9
    write_energy_per_byte_j: float = 2.5e-9  # PCM writes are energy-hungry
    actuator_w: float = 0.0

    def __post_init__(self) -> None:
        if self.capacity_bytes <= 0:
            raise DeviceError("NVRAM capacity must be positive")


class NvramModel:
    """Byte-addressable persistent memory with latency + bandwidth service."""

    def __init__(self, spec: NvramSpec | None = None) -> None:
        self.spec = spec or NvramSpec()

    def _check_extent(self, offset: int, nbytes: int) -> None:
        if offset < 0 or offset + nbytes > self.spec.capacity_bytes:
            raise DeviceError(
                f"extent [{offset}, {offset + nbytes}) outside device "
                f"of {self.spec.capacity_bytes} bytes"
            )

    def media_rate(self, op: OpKind) -> float:
        """Sustained media transfer rate for the given operation (B/s)."""
        return self.spec.seq_read_bw if op is OpKind.READ else self.spec.seq_write_bw

    def _latency(self, op: OpKind) -> float:
        return self.spec.read_latency_s if op is OpKind.READ else self.spec.write_latency_s

    def service(self, request: DiskRequest) -> DiskResult:
        """Service one request; returns its timing decomposition."""
        self._check_extent(request.offset, request.nbytes)
        transfer = request.nbytes / self.media_rate(request.op)
        return DiskResult(
            service_time=self._latency(request.op) + transfer,
            arm_time=0.0,
            rotation_time=0.0,
            transfer_time=transfer,
            nbytes=request.nbytes,
            op=request.op,
        )

    def submit_write(self, request: DiskRequest) -> DiskResult:
        """Accept a write (through the write cache where present)."""
        if request.op is not OpKind.WRITE:
            raise DeviceError("submit_write requires a WRITE request")
        return self.service(request)

    def flush_cache(self) -> DiskResult:
        """Drain any write-back cache to the media."""
        return DiskResult(0.0, 0.0, 0.0, 0.0, 0, OpKind.WRITE)

    @property
    def dirty_bytes(self) -> int:
        """Bytes accepted but not yet persisted to the media."""
        return 0

    def stream_time(self, nbytes: int, op: OpKind) -> float:
        """Seconds to move ``nbytes`` contiguously."""
        if nbytes < 0:
            raise DeviceError("nbytes must be non-negative")
        if nbytes == 0:
            return 0.0
        return self._latency(op) + nbytes / self.media_rate(op)

    def seek_time(self, distance_bytes: int) -> float:
        """Actuator travel time for a head movement of the given distance."""
        if distance_bytes < 0:
            raise DeviceError("distance must be non-negative")
        return 0.0

    def reset(self) -> None:
        """No mutable state."""
