"""Byte-addressable non-volatile memory model (future-work extension).

Models an NVRAM tier of the kind Gamell et al. [26] evaluate for deep
memory hierarchies: DRAM-class bandwidth with sub-microsecond latency and
asymmetric read/write cost.  Exposes the block-device servicing interface
so the storage stack can target it directly (e.g. staging simulation
output in NVRAM instead of spinning disk).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import DeviceError
from repro.machine.device import LatencyBandwidthModel
from repro.units import GiB, US


@dataclass(frozen=True)
class NvramSpec:
    """NVRAM device specification and power coefficients."""
    model: str = "NVDIMM (PCM-class)"
    capacity_bytes: int = 64 * GiB
    seq_read_bw: float = 6.0e9
    seq_write_bw: float = 2.0e9
    read_latency_s: float = 0.3 * US
    write_latency_s: float = 1.0 * US
    idle_w: float = 1.5
    read_energy_per_byte_j: float = 0.5e-9
    write_energy_per_byte_j: float = 2.5e-9  # PCM writes are energy-hungry
    actuator_w: float = 0.0

    def __post_init__(self) -> None:
        if self.capacity_bytes <= 0:
            raise DeviceError("NVRAM capacity must be positive")


class NvramModel(LatencyBandwidthModel):
    """Byte-addressable persistent memory with latency + bandwidth service.

    Scalar and batched servicing (the full
    :class:`~repro.machine.device.BlockDevice` protocol) comes from
    :class:`~repro.machine.device.LatencyBandwidthModel`.
    """

    def __init__(self, spec: NvramSpec | None = None) -> None:
        self.spec = spec or NvramSpec()
