"""Hardware models — the simulated testbed.

The paper's system under test (Table I) is a dual-socket Intel Sandy Bridge
node with 64 GB of DDR3 and a 500 GB 7200 rpm SATA disk.  This package
models each component's *timing* (how long work takes) and *power* (what the
meters will read), composed into a :class:`~repro.machine.node.Node`.

Extension models cover the paper's future-work list: SSD, NVRAM and RAID
storage devices, and a multi-node cluster with a network model.
"""

from repro.machine.specs import (
    CpuSpec,
    DiskSpec,
    DramSpec,
    MachineSpec,
    NetworkSpec,
    paper_testbed,
)
from repro.machine.cpu import CpuModel
from repro.machine.memory import DramModel
from repro.machine.device import BlockDevice, LatencyBandwidthModel
from repro.machine.disk import BatchComponents, HddModel, DiskRequest, DiskResult, OpKind
from repro.machine.ssd import SsdModel
from repro.machine.nvram import NvramModel
from repro.machine.raid import RaidArray, RaidLevel
from repro.machine.network import LinkModel, NicModel
from repro.machine.node import ComponentPower, Node
from repro.machine.cluster import Cluster

__all__ = [
    "CpuSpec",
    "DiskSpec",
    "DramSpec",
    "MachineSpec",
    "NetworkSpec",
    "paper_testbed",
    "CpuModel",
    "DramModel",
    "BlockDevice",
    "LatencyBandwidthModel",
    "BatchComponents",
    "HddModel",
    "DiskRequest",
    "DiskResult",
    "OpKind",
    "SsdModel",
    "NvramModel",
    "RaidArray",
    "RaidLevel",
    "LinkModel",
    "NicModel",
    "ComponentPower",
    "Node",
    "Cluster",
]
