"""Mechanical hard-disk model (timing + actuator accounting).

Models the Seagate 7200 rpm drive of Table I at the level the paper's
numbers demand:

* **Seek curve**: ``t(d) = t2t + b*sqrt(d)`` for a stroke fraction ``d`` —
  the standard square-root model of actuator travel.
* **Rotational latency**: half a revolution on average after any head
  movement; zero when the next request continues the previous one.
* **Transfer**: at the sustained media rate (direction-dependent).
* **Settle/controller** overhead per discontiguous op.
* **On-drive write cache** (64 MB, write-back): accepted writes complete at
  interface speed; dirty data is flushed in coalesced LBA order at media
  rate with a reorder penalty (this is what makes the paper's random-write
  fio job run at 31 s instead of hours — see Table III).

The model is *sequential-state*: it keeps the head position and the last
serviced extent, so contiguous streams are automatically fast and scattered
streams automatically pay mechanics.  Each serviced request reports how long
the actuator was active, which feeds the power model's seek-duty term.
"""

from __future__ import annotations

import enum
import math
from dataclasses import dataclass

from repro.errors import DeviceError
from repro.machine.specs import DiskSpec
from repro.units import rpm_to_rev_time


class OpKind(enum.Enum):
    """Block-operation direction: read or write."""
    READ = "read"
    WRITE = "write"


@dataclass(frozen=True)
class DiskRequest:
    """One block-level request: byte-addressed ``offset`` and ``nbytes``."""

    op: OpKind
    offset: int
    nbytes: int

    def __post_init__(self) -> None:
        if self.offset < 0:
            raise DeviceError(f"negative offset {self.offset}")
        if self.nbytes <= 0:
            raise DeviceError(f"request size must be positive, got {self.nbytes}")

    @property
    def end(self) -> int:
        """Exclusive end offset of this extent/request."""
        return self.offset + self.nbytes


@dataclass(frozen=True)
class DiskResult:
    """Timing decomposition of one serviced request.

    ``service_time`` may exceed the sum of the listed parts: head settle
    and controller overhead are included in the total but drive no power
    term (they are electronics time, not actuator travel), so they are not
    broken out.
    """

    service_time: float
    arm_time: float        # actuator actively traveling (powers the seek term)
    rotation_time: float   # rotational wait (spindle is always on; no extra power)
    transfer_time: float
    nbytes: int
    op: OpKind
    cached: bool = False   # absorbed by the drive's write cache

    def __post_init__(self) -> None:
        if self.service_time < -1e-12:
            raise DeviceError("negative service time")


class HddModel:
    """Stateful mechanical disk. See module docstring.

    Not thread-safe; one model instance per simulated drive.
    """

    def __init__(self, spec: DiskSpec) -> None:
        self.spec = spec
        self._head: int = 0            # byte offset the head is over
        self._last_end: int | None = None  # end of last serviced extent
        self._last_op: OpKind | None = None
        self._cache_dirty: int = 0     # dirty bytes in the on-drive write cache
        self._cache_extents: int = 0   # number of discontiguous dirty extents
        #: Host-visible time spent accepting writes since the last flush.
        #: The drive drains its cache concurrently with accepting, so this
        #: time is credited against the next flush's drain time.
        self._accept_since_flush: float = 0.0
        self._rev_time = rpm_to_rev_time(spec.rpm)

    # -- geometry helpers -----------------------------------------------------

    def _check_extent(self, offset: int, nbytes: int) -> None:
        if offset < 0 or offset + nbytes > self.spec.capacity_bytes:
            raise DeviceError(
                f"extent [{offset}, {offset + nbytes}) outside device "
                f"of {self.spec.capacity_bytes} bytes"
            )

    def seek_time(self, distance_bytes: int) -> float:
        """Actuator travel time for a head movement of ``distance_bytes``."""
        if distance_bytes < 0:
            raise DeviceError("distance must be non-negative")
        if distance_bytes == 0:
            return 0.0
        d = min(1.0, distance_bytes / self.spec.capacity_bytes)
        return self.spec.track_to_track_s + self.spec.seek_curve_b_s * math.sqrt(d)

    @property
    def avg_rotational_latency(self) -> float:
        """Half a revolution: 4.17 ms at 7200 rpm."""
        return self._rev_time / 2.0

    def media_rate(self, op: OpKind) -> float:
        """Sustained media transfer rate for the given operation (B/s)."""
        return self.spec.seq_read_bw if op is OpKind.READ else self.spec.seq_write_bw

    # -- servicing --------------------------------------------------------------

    def service(self, request: DiskRequest) -> DiskResult:
        """Service one request against the platter (bypassing write cache)."""
        self._check_extent(request.offset, request.nbytes)
        contiguous = (
            self._last_end is not None
            and request.offset == self._last_end
            and self._last_op is request.op
        )
        transfer = request.nbytes / self.media_rate(request.op)
        if contiguous:
            arm = 0.0
            rotation = 0.0
            settle = 0.0
        else:
            arm = self.seek_time(abs(request.offset - self._head))
            settle = self.spec.settle_s
            rotation = self.avg_rotational_latency
        self._head = request.end
        self._last_end = request.end
        self._last_op = request.op
        return DiskResult(
            service_time=arm + settle + rotation + transfer,
            arm_time=arm,
            rotation_time=rotation,
            transfer_time=transfer,
            nbytes=request.nbytes,
            op=request.op,
        )

    def submit_write(self, request: DiskRequest) -> DiskResult:
        """Write through the on-drive write cache if enabled and space allows.

        A cached write completes at interface speed; the data is owed to the
        platter and must be paid for by :meth:`flush_cache` (or implicitly
        when the cache overflows, in which case this call blocks for a
        flush first).
        """
        if request.op is not OpKind.WRITE:
            raise DeviceError("submit_write requires a WRITE request")
        if not self.spec.write_cache:
            return self.service(request)
        self._check_extent(request.offset, request.nbytes)
        pre_flush = 0.0
        flushed: DiskResult | None = None
        if self._cache_dirty + request.nbytes > self.spec.cache_bytes:
            flushed = self.flush_cache()
            pre_flush = flushed.service_time
        contiguous_in_cache = (
            self._last_end is not None
            and request.offset == self._last_end
            and self._last_op is OpKind.WRITE
        )
        if not contiguous_in_cache:
            self._cache_extents += 1
        self._cache_dirty += request.nbytes
        self._last_end = request.end
        self._last_op = OpKind.WRITE
        interface = request.nbytes / self.spec.interface_bw_bytes_per_s
        self._accept_since_flush += interface
        if pre_flush > 0.0:
            # The cache overflowed: surface the forced drain's platter
            # traffic and actuator activity through this result (the
            # host's interface transfer overlaps the drain, so it pays
            # the longer of the two).  ``nbytes`` here is *platter*
            # bytes drained, which is what energy accounting needs.
            assert flushed is not None
            return DiskResult(
                service_time=max(pre_flush, interface),
                arm_time=flushed.arm_time,
                rotation_time=0.0,
                transfer_time=flushed.transfer_time,
                nbytes=flushed.nbytes,
                op=OpKind.WRITE,
                cached=False,
            )
        return DiskResult(
            service_time=interface,
            arm_time=0.0,
            rotation_time=0.0,
            transfer_time=interface,
            nbytes=request.nbytes,
            op=OpKind.WRITE,
            cached=True,
        )

    def flush_cache(self) -> DiskResult:
        """Flush the on-drive write cache to the platter.

        The drive sorts dirty extents by LBA (its internal elevator) and
        streams them at media rate; each extent boundary costs a short
        repositioning.  The aggregate slowdown relative to a pure
        sequential stream is the calibrated ``random_write_penalty``.

        Draining is concurrent with accepting: the time the host already
        spent handing data over the interface since the previous flush is
        credited against the drain, so a steady stream of writes settles
        at the media (drain) rate rather than interface + media serialized.
        """
        if self._cache_dirty == 0:
            self._accept_since_flush = 0.0
            return DiskResult(0.0, 0.0, 0.0, 0.0, 0, OpKind.WRITE)
        dirty, extents = self._cache_dirty, max(1, self._cache_extents)
        stream = dirty / self.spec.seq_write_bw
        if extents > 1:
            drain = stream * self.spec.random_write_penalty
        else:
            drain = stream
        service = max(0.0, drain - self._accept_since_flush)
        # Actuator activity: one short hop per coalesced-extent switch.
        # The hops overlap streaming (scheduled into rotational gaps), so
        # they contribute power duty without extending the drain beyond
        # the calibrated penalty.
        arm = min(drain, (extents - 1) * self.spec.coalesced_hop_s)
        self._cache_dirty = 0
        self._cache_extents = 0
        self._accept_since_flush = 0.0
        return DiskResult(
            service_time=service,
            arm_time=arm,
            rotation_time=0.0,
            transfer_time=stream,
            nbytes=dirty,
            op=OpKind.WRITE,
        )

    @property
    def dirty_bytes(self) -> int:
        """Bytes accepted but not yet persisted to the media."""
        return self._cache_dirty

    def service_random_batch(self, offsets, nbytes: int, op: OpKind) -> DiskResult:
        """Service a batch of same-size scattered requests, vectorized.

        Semantically equivalent to looping :meth:`service` over the batch
        (tested), but computes all seek distances with NumPy.  Assumes the
        batch is genuinely scattered — accidental contiguity between
        consecutive offsets is not detected, which for uniform-random
        offsets is a vanishing correction.
        """
        import numpy as np

        offs = np.asarray(offsets, dtype=np.int64)
        if offs.size == 0:
            return DiskResult(0.0, 0.0, 0.0, 0.0, 0, op)
        if nbytes <= 0:
            raise DeviceError("request size must be positive")
        if offs.min() < 0 or offs.max() + nbytes > self.spec.capacity_bytes:
            raise DeviceError("batch extends outside the device")
        # Head travels from its current position through each request end.
        starts = offs
        prev_ends = np.empty_like(offs)
        prev_ends[0] = self._head
        prev_ends[1:] = offs[:-1] + nbytes
        d = np.abs(starts - prev_ends) / self.spec.capacity_bytes
        arm = float(np.sum(
            self.spec.track_to_track_s + self.spec.seek_curve_b_s * np.sqrt(d)
        ))
        n = offs.size
        rotation = n * self.avg_rotational_latency
        settle = n * self.spec.settle_s
        transfer = n * nbytes / self.media_rate(op)
        self._head = int(offs[-1]) + nbytes
        self._last_end = self._head
        self._last_op = op
        return DiskResult(
            service_time=arm + settle + rotation + transfer,
            arm_time=arm,
            rotation_time=rotation,
            transfer_time=transfer,
            nbytes=n * nbytes,
            op=op,
        )

    # -- convenience for streaming workloads ------------------------------------

    def stream_time(self, nbytes: int, op: OpKind) -> float:
        """Time to move ``nbytes`` contiguously (one initial positioning)."""
        if nbytes < 0:
            raise DeviceError("nbytes must be non-negative")
        if nbytes == 0:
            return 0.0
        position = self.seek_time(self.spec.capacity_bytes // 3) + self.avg_rotational_latency
        return position + nbytes / self.media_rate(op)

    def reset(self) -> None:
        """Return the drive to its initial state (head at LBA 0, cache clean)."""
        self._head = 0
        self._last_end = None
        self._last_op = None
        self._cache_dirty = 0
        self._cache_extents = 0
        self._accept_since_flush = 0.0
