"""Mechanical hard-disk model (timing + actuator accounting).

Models the Seagate 7200 rpm drive of Table I at the level the paper's
numbers demand:

* **Seek curve**: ``t(d) = t2t + b*sqrt(d)`` for a stroke fraction ``d`` —
  the standard square-root model of actuator travel.
* **Rotational latency**: half a revolution on average after any head
  movement; zero when the next request continues the previous one.
* **Transfer**: at the sustained media rate (direction-dependent).
* **Settle/controller** overhead per discontiguous op.
* **On-drive write cache** (64 MB, write-back): accepted writes complete at
  interface speed; dirty data is flushed in coalesced LBA order at media
  rate with a reorder penalty (this is what makes the paper's random-write
  fio job run at 31 s instead of hours — see Table III).

The model is *sequential-state*: it keeps the head position and the last
serviced extent, so contiguous streams are automatically fast and scattered
streams automatically pay mechanics.  Each serviced request reports how long
the actuator was active, which feeds the power model's seek-duty term.
"""

from __future__ import annotations

import enum
import math
from dataclasses import dataclass

import numpy as np

from repro.errors import DeviceError
from repro.machine.specs import DiskSpec
from repro.units import rpm_to_rev_time


class OpKind(enum.Enum):
    """Block-operation direction: read or write."""
    READ = "read"
    WRITE = "write"


@dataclass(frozen=True)
class DiskRequest:
    """One block-level request: byte-addressed ``offset`` and ``nbytes``."""

    op: OpKind
    offset: int
    nbytes: int

    def __post_init__(self) -> None:
        if self.offset < 0:
            raise DeviceError(f"negative offset {self.offset}")
        if self.nbytes <= 0:
            raise DeviceError(f"request size must be positive, got {self.nbytes}")

    @property
    def end(self) -> int:
        """Exclusive end offset of this extent/request."""
        return self.offset + self.nbytes


@dataclass(frozen=True)
class DiskResult:
    """Timing decomposition of one serviced request.

    ``service_time`` may exceed the sum of the listed parts: head settle
    and controller overhead are included in the total but drive no power
    term (they are electronics time, not actuator travel), so they are not
    broken out.
    """

    service_time: float
    arm_time: float        # actuator actively traveling (powers the seek term)
    rotation_time: float   # rotational wait (spindle is always on; no extra power)
    transfer_time: float
    nbytes: int
    op: OpKind
    cached: bool = False   # absorbed by the drive's write cache
    #: How many logical requests this result aggregates (batched servicing
    #: folds a whole request stream into one result; op counters need the
    #: original multiplicity).
    n_ops: int = 1

    def __post_init__(self) -> None:
        if self.service_time < -1e-12:
            raise DeviceError("negative service time")


@dataclass(frozen=True)
class BatchComponents:
    """Per-request timing decomposition of a serviced batch.

    Parallel float64 arrays, one entry per logical request, in submission
    order.  ``media_bytes`` carries the bytes the result *prices*:
    serviced bytes for direct requests, and for cached write streams only
    the platter traffic drained by forced flushes — cached acceptances
    contribute zero, exactly as :class:`~repro.system.blockdev.IoStats`
    ignores the ``nbytes`` of a ``cached`` scalar result.  Summing
    ``media_bytes`` therefore lands the aggregate result's ``nbytes``
    where the scalar stream's accounting would.
    """

    service: np.ndarray
    arm: np.ndarray
    rotation: np.ndarray
    transfer: np.ndarray
    media_bytes: np.ndarray

    @property
    def n(self) -> int:
        """Number of requests in the batch."""
        return int(self.service.size)


def empty_components(n: int = 0) -> BatchComponents:
    """All-zero components for ``n`` requests."""
    zeros = np.zeros(n, dtype=np.float64)
    return BatchComponents(zeros, zeros.copy(), zeros.copy(), zeros.copy(),
                           np.zeros(n, dtype=np.int64))


def batch_arrays(offsets, nbytes) -> tuple[np.ndarray, np.ndarray]:
    """Coerce a batch spec into validated (offsets, sizes) int64 arrays.

    ``nbytes`` may be a scalar (uniform request size) or a per-request
    array broadcastable against ``offsets``.
    """
    offs = np.asarray(offsets, dtype=np.int64)
    if offs.ndim != 1:
        raise DeviceError(f"batch offsets must be 1-D, got shape {offs.shape}")
    sizes = np.broadcast_to(np.asarray(nbytes, dtype=np.int64), offs.shape)
    if offs.size:
        if int(offs.min()) < 0:
            raise DeviceError("negative offset in batch")
        if int(sizes.min()) <= 0:
            raise DeviceError("request size must be positive")
    return offs, sizes


def read_mask(op, n: int) -> np.ndarray:
    """Normalize a batch op spec (OpKind or per-request bool mask) to a mask."""
    if isinstance(op, OpKind):
        return np.full(n, op is OpKind.READ, dtype=bool)
    mask = np.asarray(op, dtype=bool)
    if mask.shape != (n,):
        raise DeviceError(f"op mask shape {mask.shape} does not match batch of {n}")
    return mask


def batch_result(comp: BatchComponents, op: OpKind,
                 cached: bool = False) -> DiskResult:
    """Fold per-request components into one aggregate :class:`DiskResult`."""
    return DiskResult(
        service_time=float(np.sum(comp.service)),
        arm_time=float(np.sum(comp.arm)),
        rotation_time=float(np.sum(comp.rotation)),
        transfer_time=float(np.sum(comp.transfer)),
        nbytes=int(np.sum(comp.media_bytes)),
        op=op,
        cached=cached,
        n_ops=comp.n,
    )


class HddModel:
    """Stateful mechanical disk. See module docstring.

    Not thread-safe; one model instance per simulated drive.
    """

    def __init__(self, spec: DiskSpec) -> None:
        self.spec = spec
        self._head: int = 0            # byte offset the head is over
        self._last_end: int | None = None  # end of last serviced extent
        self._last_op: OpKind | None = None
        self._cache_dirty: int = 0     # dirty bytes in the on-drive write cache
        self._cache_extents: int = 0   # number of discontiguous dirty extents
        #: Host-visible time spent accepting writes since the last flush.
        #: The drive drains its cache concurrently with accepting, so this
        #: time is credited against the next flush's drain time.
        self._accept_since_flush: float = 0.0
        self._rev_time = rpm_to_rev_time(spec.rpm)

    # -- geometry helpers -----------------------------------------------------

    @property
    def capacity_bytes(self) -> int:
        """Usable capacity in bytes."""
        return self.spec.capacity_bytes

    def _check_extent(self, offset: int, nbytes: int) -> None:
        if offset < 0 or offset + nbytes > self.spec.capacity_bytes:
            raise DeviceError(
                f"extent [{offset}, {offset + nbytes}) outside device "
                f"of {self.spec.capacity_bytes} bytes"
            )

    def seek_time(self, distance_bytes: int) -> float:
        """Actuator travel time for a head movement of ``distance_bytes``."""
        if distance_bytes < 0:
            raise DeviceError("distance must be non-negative")
        if distance_bytes == 0:
            return 0.0
        d = min(1.0, distance_bytes / self.spec.capacity_bytes)
        return self.spec.track_to_track_s + self.spec.seek_curve_b_s * math.sqrt(d)

    @property
    def avg_rotational_latency(self) -> float:
        """Half a revolution: 4.17 ms at 7200 rpm."""
        return self._rev_time / 2.0

    def media_rate(self, op: OpKind) -> float:
        """Sustained media transfer rate for the given operation (B/s)."""
        return self.spec.seq_read_bw if op is OpKind.READ else self.spec.seq_write_bw

    # -- servicing --------------------------------------------------------------

    def service(self, request: DiskRequest) -> DiskResult:
        """Service one request against the platter (bypassing write cache)."""
        self._check_extent(request.offset, request.nbytes)
        contiguous = (
            self._last_end is not None
            and request.offset == self._last_end
            and self._last_op is request.op
        )
        transfer = request.nbytes / self.media_rate(request.op)
        if contiguous:
            arm = 0.0
            rotation = 0.0
            settle = 0.0
        else:
            arm = self.seek_time(abs(request.offset - self._head))
            settle = self.spec.settle_s
            rotation = self.avg_rotational_latency
        self._head = request.end
        self._last_end = request.end
        self._last_op = request.op
        return DiskResult(
            service_time=arm + settle + rotation + transfer,
            arm_time=arm,
            rotation_time=rotation,
            transfer_time=transfer,
            nbytes=request.nbytes,
            op=request.op,
        )

    def submit_write(self, request: DiskRequest) -> DiskResult:
        """Write through the on-drive write cache if enabled and space allows.

        A cached write completes at interface speed; the data is owed to the
        platter and must be paid for by :meth:`flush_cache` (or implicitly
        when the cache overflows, in which case this call blocks for a
        flush first).
        """
        if request.op is not OpKind.WRITE:
            raise DeviceError("submit_write requires a WRITE request")
        if not self.spec.write_cache:
            return self.service(request)
        self._check_extent(request.offset, request.nbytes)
        pre_flush = 0.0
        flushed: DiskResult | None = None
        if self._cache_dirty + request.nbytes > self.spec.cache_bytes:
            flushed = self.flush_cache()
            pre_flush = flushed.service_time
        contiguous_in_cache = (
            self._last_end is not None
            and request.offset == self._last_end
            and self._last_op is OpKind.WRITE
        )
        if not contiguous_in_cache:
            self._cache_extents += 1
        self._cache_dirty += request.nbytes
        self._last_end = request.end
        self._last_op = OpKind.WRITE
        interface = request.nbytes / self.spec.interface_bw_bytes_per_s
        self._accept_since_flush += interface
        if pre_flush > 0.0:
            # The cache overflowed: surface the forced drain's platter
            # traffic and actuator activity through this result (the
            # host's interface transfer overlaps the drain, so it pays
            # the longer of the two).  ``nbytes`` here is *platter*
            # bytes drained, which is what energy accounting needs.
            assert flushed is not None
            return DiskResult(
                service_time=max(pre_flush, interface),
                arm_time=flushed.arm_time,
                rotation_time=0.0,
                transfer_time=flushed.transfer_time,
                nbytes=flushed.nbytes,
                op=OpKind.WRITE,
                cached=False,
            )
        return DiskResult(
            service_time=interface,
            arm_time=0.0,
            rotation_time=0.0,
            transfer_time=interface,
            nbytes=request.nbytes,
            op=OpKind.WRITE,
            cached=True,
        )

    def flush_cache(self) -> DiskResult:
        """Flush the on-drive write cache to the platter.

        The drive sorts dirty extents by LBA (its internal elevator) and
        streams them at media rate; each extent boundary costs a short
        repositioning.  The aggregate slowdown relative to a pure
        sequential stream is the calibrated ``random_write_penalty``.

        Draining is concurrent with accepting: the time the host already
        spent handing data over the interface since the previous flush is
        credited against the drain, so a steady stream of writes settles
        at the media (drain) rate rather than interface + media serialized.
        """
        if self._cache_dirty == 0:
            self._accept_since_flush = 0.0
            return DiskResult(0.0, 0.0, 0.0, 0.0, 0, OpKind.WRITE)
        dirty, extents = self._cache_dirty, max(1, self._cache_extents)
        stream = dirty / self.spec.seq_write_bw
        if extents > 1:
            drain = stream * self.spec.random_write_penalty
        else:
            drain = stream
        service = max(0.0, drain - self._accept_since_flush)
        # Actuator activity: one short hop per coalesced-extent switch.
        # The hops overlap streaming (scheduled into rotational gaps), so
        # they contribute power duty without extending the drain beyond
        # the calibrated penalty.
        arm = min(drain, (extents - 1) * self.spec.coalesced_hop_s)
        self._cache_dirty = 0
        self._cache_extents = 0
        self._accept_since_flush = 0.0
        return DiskResult(
            service_time=service,
            arm_time=arm,
            rotation_time=0.0,
            transfer_time=stream,
            nbytes=dirty,
            op=OpKind.WRITE,
        )

    @property
    def dirty_bytes(self) -> int:
        """Bytes accepted but not yet persisted to the media."""
        return self._cache_dirty

    # -- batched servicing -------------------------------------------------------

    def _check_batch(self, offs: np.ndarray, sizes: np.ndarray) -> None:
        if offs.size and int((offs + sizes).max()) > self.spec.capacity_bytes:
            raise DeviceError(
                f"batch extends outside device of {self.spec.capacity_bytes} bytes"
            )

    def service_components(self, offsets, nbytes, op) -> BatchComponents:
        """Vectorized :meth:`service` over a request stream.

        Produces the same per-request timing (and the same final head /
        extent state) as looping :meth:`service`, including contiguity
        detection between consecutive batch elements.  ``op`` is an
        :class:`OpKind` for a uniform batch or a per-request boolean
        read-mask for mixed streams.
        """
        offs, sizes = batch_arrays(offsets, nbytes)
        n = offs.size
        if n == 0:
            return empty_components(0)
        self._check_batch(offs, sizes)
        is_read = read_mask(op, n)
        ends = offs + sizes
        first_op = OpKind.READ if is_read[0] else OpKind.WRITE

        cont = np.empty(n, dtype=bool)
        cont[0] = (
            self._last_end is not None
            and int(offs[0]) == self._last_end
            and self._last_op is first_op
        )
        cont[1:] = (offs[1:] == ends[:-1]) & (is_read[1:] == is_read[:-1])

        prev_head = np.empty(n, dtype=np.int64)
        prev_head[0] = self._head
        prev_head[1:] = ends[:-1]
        dist = np.abs(offs - prev_head)
        frac = np.minimum(1.0, dist / self.spec.capacity_bytes)
        arm = np.where(
            dist == 0, 0.0,
            self.spec.track_to_track_s + self.spec.seek_curve_b_s * np.sqrt(frac),
        )
        arm = np.where(cont, 0.0, arm)
        settle = np.where(cont, 0.0, self.spec.settle_s)
        rotation = np.where(cont, 0.0, self.avg_rotational_latency)
        rate = np.where(is_read, self.spec.seq_read_bw, self.spec.seq_write_bw)
        transfer = sizes / rate

        self._head = int(ends[-1])
        self._last_end = int(ends[-1])
        self._last_op = OpKind.READ if is_read[-1] else OpKind.WRITE
        return BatchComponents(
            service=arm + settle + rotation + transfer,
            arm=arm,
            rotation=rotation,
            transfer=transfer,
            media_bytes=sizes.copy(),
        )

    def service_batch(self, offsets, nbytes, op: OpKind) -> DiskResult:
        """Batched :meth:`service`: one aggregate result for a request stream."""
        return batch_result(self.service_components(offsets, nbytes, op), op)

    def submit_write_components(self, offsets, nbytes) -> BatchComponents:
        """Vectorized :meth:`submit_write` over a write stream.

        Replays the write-back cache generation by generation: requests
        accumulate at interface speed until one would overflow the cache,
        which forces a drain whose platter traffic and actuator activity
        surface on that overflowing request — exactly the scalar
        semantics, flush crediting included.
        """
        offs, sizes = batch_arrays(offsets, nbytes)
        n = offs.size
        if n == 0:
            return empty_components(0)
        if not self.spec.write_cache:
            return self.service_components(offs, sizes, OpKind.WRITE)
        self._check_batch(offs, sizes)
        ends = offs + sizes
        interface = sizes / self.spec.interface_bw_bytes_per_s

        cont = np.empty(n, dtype=bool)
        cont[0] = (
            self._last_end is not None
            and int(offs[0]) == self._last_end
            and self._last_op is OpKind.WRITE
        )
        cont[1:] = offs[1:] == ends[:-1]
        new_extent = (~cont).astype(np.int64)

        # Prefix sums let each cache generation be located in O(log n).
        size_cum = np.cumsum(sizes)
        ext_cum = np.cumsum(new_extent)
        if_cum = np.cumsum(interface)

        def _span(cum: np.ndarray, i: int, k: int):
            lo = cum[i - 1] if i else 0
            return cum[k - 1] - lo

        service = interface.copy()
        transfer = interface.copy()
        arm = np.zeros(n, dtype=np.float64)
        # Cached acceptances price zero bytes (IoStats skips the nbytes
        # of a cached scalar result); only forced drains record the
        # platter bytes actually flushed.
        media = np.zeros(n, dtype=np.int64)
        dirty = self._cache_dirty
        extents = self._cache_extents
        accept = self._accept_since_flush
        cache_bytes = self.spec.cache_bytes

        i = 0
        while i < n:
            base = int(size_cum[i - 1] if i else 0) - dirty
            k = int(np.searchsorted(size_cum, cache_bytes + base, side="right"))
            k = max(k, i)
            if k >= n:
                # Remainder fits in the cache: absorb and finish.
                dirty += int(_span(size_cum, i, n))
                extents += int(_span(ext_cum, i, n))
                accept += float(_span(if_cum, i, n))
                break
            if k > i:
                dirty += int(_span(size_cum, i, k))
                extents += int(_span(ext_cum, i, k))
                accept += float(_span(if_cum, i, k))
            # Request k overflows: forced drain (same math as flush_cache).
            if dirty > 0:
                stream = dirty / self.spec.seq_write_bw
                drain = stream * self.spec.random_write_penalty \
                    if max(1, extents) > 1 else stream
                fl_service = max(0.0, drain - accept)
                fl_arm = min(drain, (max(1, extents) - 1) * self.spec.coalesced_hop_s)
            else:
                stream = 0.0
                fl_service = 0.0
                fl_arm = 0.0
            if fl_service > 0.0:
                service[k] = max(fl_service, float(interface[k]))
                arm[k] = fl_arm
                transfer[k] = stream
                media[k] = dirty
            # else: the drain was fully credited (or empty) — the scalar
            # path reports a plain cached acceptance.
            dirty = int(sizes[k])
            extents = int(new_extent[k])
            accept = float(interface[k])
            i = k + 1

        self._cache_dirty = dirty
        self._cache_extents = extents
        self._accept_since_flush = accept
        self._last_end = int(ends[-1])
        self._last_op = OpKind.WRITE
        return BatchComponents(
            service=service,
            arm=arm,
            rotation=np.zeros(n, dtype=np.float64),
            transfer=transfer,
            media_bytes=media,
        )

    def submit_write_batch(self, offsets, nbytes) -> DiskResult:
        """Batched :meth:`submit_write`: one aggregate result for a stream."""
        comp = self.submit_write_components(offsets, nbytes)
        return batch_result(comp, OpKind.WRITE)

    # -- convenience for streaming workloads ------------------------------------

    def stream_time(self, nbytes: int, op: OpKind) -> float:
        """Time to move ``nbytes`` contiguously (one initial positioning)."""
        if nbytes < 0:
            raise DeviceError("nbytes must be non-negative")
        if nbytes == 0:
            return 0.0
        position = self.seek_time(self.spec.capacity_bytes // 3) + self.avg_rotational_latency
        return position + nbytes / self.media_rate(op)

    def reset(self) -> None:
        """Return the drive to its initial state (head at LBA 0, cache clean)."""
        self._head = 0
        self._last_end = None
        self._last_op = None
        self._cache_dirty = 0
        self._cache_extents = 0
        self._accept_since_flush = 0.0
