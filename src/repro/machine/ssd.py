"""Solid-state drive model (future-work extension, Section VI.A).

The paper proposes evaluating "RAID disks, solid-state drives, and other
flash-based devices such as NVRAM".  This model exposes the same servicing
interface as :class:`~repro.machine.disk.HddModel` so every storage-stack
and pipeline component runs unmodified on flash.

Key behavioural difference the extension benchmarks exercise: random access
costs a fixed (tens of microseconds) latency instead of milliseconds of
mechanics, so the sequential/random energy gap — the core of the paper's
Table III argument — nearly vanishes.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import DeviceError
from repro.machine.disk import DiskRequest, DiskResult, OpKind
from repro.units import GB, US


@dataclass(frozen=True)
class SsdSpec:
    """SSD device specification and power coefficients."""
    model: str = "SATA SSD (2015-class)"
    capacity_bytes: int = 500 * GB
    seq_read_bw: float = 520e6
    seq_write_bw: float = 450e6
    read_latency_s: float = 80 * US
    write_latency_s: float = 60 * US
    idle_w: float = 0.6
    read_energy_per_byte_j: float = 3.0 / 520e6   # ~3 W at full read rate
    write_energy_per_byte_j: float = 4.5 / 450e6  # writes cost more (program ops)
    actuator_w: float = 0.0  # no mechanics

    def __post_init__(self) -> None:
        if self.capacity_bytes <= 0:
            raise DeviceError("SSD capacity must be positive")


class SsdModel:
    """Flash device with per-op latency + bandwidth service model."""

    def __init__(self, spec: SsdSpec | None = None) -> None:
        self.spec = spec or SsdSpec()

    def _check_extent(self, offset: int, nbytes: int) -> None:
        if offset < 0 or offset + nbytes > self.spec.capacity_bytes:
            raise DeviceError(
                f"extent [{offset}, {offset + nbytes}) outside device "
                f"of {self.spec.capacity_bytes} bytes"
            )

    def media_rate(self, op: OpKind) -> float:
        """Sustained media transfer rate for the given operation (B/s)."""
        return self.spec.seq_read_bw if op is OpKind.READ else self.spec.seq_write_bw

    def _latency(self, op: OpKind) -> float:
        return self.spec.read_latency_s if op is OpKind.READ else self.spec.write_latency_s

    def service(self, request: DiskRequest) -> DiskResult:
        """Service one request; returns its timing decomposition."""
        self._check_extent(request.offset, request.nbytes)
        transfer = request.nbytes / self.media_rate(request.op)
        return DiskResult(
            service_time=self._latency(request.op) + transfer,
            arm_time=0.0,
            rotation_time=0.0,
            transfer_time=transfer,
            nbytes=request.nbytes,
            op=request.op,
        )

    def submit_write(self, request: DiskRequest) -> DiskResult:
        """Accept a write (through the write cache where present)."""
        if request.op is not OpKind.WRITE:
            raise DeviceError("submit_write requires a WRITE request")
        return self.service(request)

    def flush_cache(self) -> DiskResult:
        """Drain any write-back cache to the media."""
        return DiskResult(0.0, 0.0, 0.0, 0.0, 0, OpKind.WRITE)

    @property
    def dirty_bytes(self) -> int:
        """Bytes accepted but not yet persisted to the media."""
        return 0

    def stream_time(self, nbytes: int, op: OpKind) -> float:
        """Seconds to move ``nbytes`` contiguously."""
        if nbytes < 0:
            raise DeviceError("nbytes must be non-negative")
        if nbytes == 0:
            return 0.0
        return self._latency(op) + nbytes / self.media_rate(op)

    def seek_time(self, distance_bytes: int) -> float:
        """Flash has no mechanics; 'seeking' is free."""
        if distance_bytes < 0:
            raise DeviceError("distance must be non-negative")
        return 0.0

    def reset(self) -> None:
        """No mutable mechanical state to reset."""
