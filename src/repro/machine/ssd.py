"""Solid-state drive model (future-work extension, Section VI.A).

The paper proposes evaluating "RAID disks, solid-state drives, and other
flash-based devices such as NVRAM".  This model exposes the same servicing
interface as :class:`~repro.machine.disk.HddModel` so every storage-stack
and pipeline component runs unmodified on flash.

Key behavioural difference the extension benchmarks exercise: random access
costs a fixed (tens of microseconds) latency instead of milliseconds of
mechanics, so the sequential/random energy gap — the core of the paper's
Table III argument — nearly vanishes.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import DeviceError
from repro.machine.device import LatencyBandwidthModel
from repro.units import GB, US


@dataclass(frozen=True)
class SsdSpec:
    """SSD device specification and power coefficients."""
    model: str = "SATA SSD (2015-class)"
    capacity_bytes: int = 500 * GB
    seq_read_bw: float = 520e6
    seq_write_bw: float = 450e6
    read_latency_s: float = 80 * US
    write_latency_s: float = 60 * US
    idle_w: float = 0.6
    read_energy_per_byte_j: float = 3.0 / 520e6   # ~3 W at full read rate
    write_energy_per_byte_j: float = 4.5 / 450e6  # writes cost more (program ops)
    actuator_w: float = 0.0  # no mechanics

    def __post_init__(self) -> None:
        if self.capacity_bytes <= 0:
            raise DeviceError("SSD capacity must be positive")


class SsdModel(LatencyBandwidthModel):
    """Flash device with per-op latency + bandwidth service model.

    Scalar and batched servicing (the full
    :class:`~repro.machine.device.BlockDevice` protocol) comes from
    :class:`~repro.machine.device.LatencyBandwidthModel`.
    """

    def __init__(self, spec: SsdSpec | None = None) -> None:
        self.spec = spec or SsdSpec()
