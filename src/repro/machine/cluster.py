"""Cluster model: multiple nodes plus an interconnect (future-work extension).

Supports the paper's proposed multi-node study: a set of
:class:`~repro.machine.node.Node` instances joined by
:class:`~repro.machine.network.LinkModel` links, with helpers for the two
communication patterns the extension benchmarks exercise:

* halo exchange between domain-decomposition neighbours, and
* funneling simulation output to I/O or staging nodes (in-transit).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigError, MachineError
from repro.machine.network import LinkModel
from repro.machine.node import Node
from repro.machine.specs import MachineSpec, paper_testbed


@dataclass(frozen=True)
class ClusterPower:
    """Instantaneous aggregate power over all nodes."""

    per_node: tuple[float, ...]

    @property
    def total(self) -> float:
        """Sum over all nodes."""
        return sum(self.per_node)


class Cluster:
    """Homogeneous cluster of ``n_nodes`` paper-testbed nodes."""

    def __init__(self, n_nodes: int, spec: MachineSpec | None = None) -> None:
        if n_nodes <= 0:
            raise ConfigError("cluster needs at least one node")
        self.spec = spec or paper_testbed()
        self.nodes = [Node(self.spec) for _ in range(n_nodes)]
        self.link = LinkModel(self.spec.network)

    @property
    def n_nodes(self) -> int:
        """Number of nodes in the cluster."""
        return len(self.nodes)

    # -- communication timing ---------------------------------------------------

    def p2p_time(self, nbytes: int) -> float:
        """Point-to-point message time between any two nodes."""
        return self.link.transfer_time(nbytes)

    def halo_exchange_time(self, halo_bytes_per_neighbor: int,
                           neighbors: int = 4) -> float:
        """One halo-exchange round per node (neighbors exchanged concurrently
        pairwise; serialized conservatively over dimension phases)."""
        if neighbors < 0:
            raise MachineError("neighbors must be non-negative")
        phases = (neighbors + 1) // 2  # x then y (then z) pairwise phases
        return phases * self.link.transfer_time(2 * halo_bytes_per_neighbor)

    def gather_time(self, nbytes_per_node: int, fanin: int | None = None) -> float:
        """Time to funnel each compute node's ``nbytes_per_node`` to one
        staging node.  The staging NIC is the bottleneck: all senders share
        its ingest bandwidth."""
        senders = (self.n_nodes - 1) if fanin is None else fanin
        if senders <= 0:
            return 0.0
        total = senders * nbytes_per_node
        return self.link.spec.latency_s + total / self.link.spec.link_bw_bytes_per_s

    # -- power --------------------------------------------------------------------

    def idle_power(self) -> ClusterPower:
        """Aggregate power with every node idle."""
        return ClusterPower(tuple(n.static_power_w for n in self.nodes))

    def power(self, activities) -> ClusterPower:
        """Aggregate power for per-node activities (sequence of Activity)."""
        if len(activities) != self.n_nodes:
            raise MachineError(
                f"expected {self.n_nodes} activities, got {len(activities)}"
            )
        return ClusterPower(tuple(
            node.power(act).system for node, act in zip(self.nodes, activities)
        ))
