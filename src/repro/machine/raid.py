"""RAID array model (future-work extension, Section VI.A).

Composes member block devices (HDD, SSD or NVRAM models) into one logical
device with the same servicing interface:

* **RAID 0** stripes extents across members; large transfers parallelize.
* **RAID 1** mirrors: reads go to one member (round-robin), writes to all.
* **RAID 5** stripes with rotating parity: reads behave like RAID 0 over
  ``n`` members; small writes pay the read-modify-write penalty (read old
  data + parity, write new data + parity).

Member service times for one logical request are taken in parallel (the
array completes when its slowest member does); energy/power aggregates over
all members.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.errors import DeviceError
from repro.machine.disk import DiskRequest, DiskResult, OpKind
from repro.units import KiB


class RaidLevel(enum.Enum):
    """Supported RAID levels."""
    RAID0 = 0
    RAID1 = 1
    RAID5 = 5


@dataclass(frozen=True)
class _MemberSlice:
    member: int
    offset: int
    nbytes: int


class RaidArray:
    """A RAID set over homogeneous member devices.

    Parameters
    ----------
    members:
        Device models (duck-typed: ``service``, ``submit_write``,
        ``flush_cache``, ``stream_time``, ``spec``).
    level:
        RAID 0, 1 or 5.
    stripe_bytes:
        Stripe unit (chunk) size for striped levels.
    """

    def __init__(self, members: list, level: RaidLevel,
                 stripe_bytes: int = 64 * KiB) -> None:
        if not members:
            raise DeviceError("RAID array needs at least one member")
        if level is RaidLevel.RAID1 and len(members) < 2:
            raise DeviceError("RAID 1 needs at least two members")
        if level is RaidLevel.RAID5 and len(members) < 3:
            raise DeviceError("RAID 5 needs at least three members")
        if stripe_bytes <= 0:
            raise DeviceError("stripe size must be positive")
        self.members = list(members)
        self.level = level
        self.stripe_bytes = int(stripe_bytes)
        self._rr = 0  # round-robin read pointer for RAID 1

    # -- geometry ---------------------------------------------------------------

    @property
    def n(self) -> int:
        """Number of member devices."""
        return len(self.members)

    @property
    def data_members(self) -> int:
        """Members contributing capacity (n for RAID0, 1 for RAID1, n-1 for RAID5)."""
        if self.level is RaidLevel.RAID0:
            return self.n
        if self.level is RaidLevel.RAID1:
            return 1
        return self.n - 1

    @property
    def capacity_bytes(self) -> int:
        """Usable capacity of the array in bytes."""
        member_cap = min(m.spec.capacity_bytes for m in self.members)
        return member_cap * self.data_members

    @property
    def idle_w(self) -> float:
        """Static power of all members combined (W)."""
        return sum(m.spec.idle_w for m in self.members)

    def _check_extent(self, offset: int, nbytes: int) -> None:
        if offset < 0 or offset + nbytes > self.capacity_bytes:
            raise DeviceError(
                f"extent [{offset}, {offset + nbytes}) outside array "
                f"of {self.capacity_bytes} bytes"
            )

    def _slices(self, offset: int, nbytes: int) -> list[_MemberSlice]:
        """Map a logical extent onto member extents (striped levels)."""
        out: list[_MemberSlice] = []
        pos = offset
        remaining = nbytes
        width = self.data_members
        while remaining > 0:
            stripe_index = pos // self.stripe_bytes
            within = pos % self.stripe_bytes
            take = min(self.stripe_bytes - within, remaining)
            member = stripe_index % width
            member_offset = (stripe_index // width) * self.stripe_bytes + within
            out.append(_MemberSlice(member, member_offset, take))
            pos += take
            remaining -= take
        return out

    # -- servicing ---------------------------------------------------------------

    def service(self, request: DiskRequest) -> DiskResult:
        """Service one request; returns its timing decomposition."""
        self._check_extent(request.offset, request.nbytes)
        if self.level is RaidLevel.RAID1:
            return self._service_mirror(request)
        if self.level is RaidLevel.RAID5 and request.op is OpKind.WRITE:
            return self._service_raid5_write(request)
        return self._service_striped(request)

    def _merge_parallel(self, results: list[DiskResult], op: OpKind,
                        nbytes: int) -> DiskResult:
        """Array-level result: slowest member gates completion."""
        if not results:
            return DiskResult(0.0, 0.0, 0.0, 0.0, 0, op)
        return DiskResult(
            service_time=max(r.service_time for r in results),
            arm_time=max(r.arm_time for r in results),
            rotation_time=max(r.rotation_time for r in results),
            transfer_time=max(r.transfer_time for r in results),
            nbytes=nbytes,
            op=op,
        )

    def _service_striped(self, request: DiskRequest) -> DiskResult:
        per_member: dict[int, list[_MemberSlice]] = {}
        for sl in self._slices(request.offset, request.nbytes):
            per_member.setdefault(sl.member, []).append(sl)
        results = []
        for member, slices in per_member.items():
            dev = self.members[member]
            total = DiskResult(0.0, 0.0, 0.0, 0.0, 0, request.op)
            for sl in slices:
                r = dev.service(DiskRequest(request.op, sl.offset, sl.nbytes))
                total = DiskResult(
                    total.service_time + r.service_time,
                    total.arm_time + r.arm_time,
                    total.rotation_time + r.rotation_time,
                    total.transfer_time + r.transfer_time,
                    total.nbytes + r.nbytes,
                    request.op,
                )
            results.append(total)
        return self._merge_parallel(results, request.op, request.nbytes)

    def _service_mirror(self, request: DiskRequest) -> DiskResult:
        if request.op is OpKind.READ:
            dev = self.members[self._rr % self.n]
            self._rr += 1
            return dev.service(request)
        results = [m.service(request) for m in self.members]
        return self._merge_parallel(results, OpKind.WRITE, request.nbytes)

    def _service_raid5_write(self, request: DiskRequest) -> DiskResult:
        """Small-write penalty: read old data + old parity, write new both."""
        slices = self._slices(request.offset, request.nbytes)
        results = []
        for sl in slices:
            dev = self.members[sl.member]
            parity_dev = self.members[(sl.member + 1) % self.n]
            read_old = dev.service(DiskRequest(OpKind.READ, sl.offset, sl.nbytes))
            read_parity = parity_dev.service(DiskRequest(OpKind.READ, sl.offset, sl.nbytes))
            write_new = dev.service(DiskRequest(OpKind.WRITE, sl.offset, sl.nbytes))
            write_parity = parity_dev.service(DiskRequest(OpKind.WRITE, sl.offset, sl.nbytes))
            results.append(DiskResult(
                # data and parity drives operate in parallel; the two phases
                # (read-old, write-new) serialize.
                max(read_old.service_time, read_parity.service_time)
                + max(write_new.service_time, write_parity.service_time),
                read_old.arm_time + write_new.arm_time,
                read_old.rotation_time + write_new.rotation_time,
                read_old.transfer_time + write_new.transfer_time,
                sl.nbytes,
                OpKind.WRITE,
            ))
        total = sum(r.service_time for r in results)
        return DiskResult(
            service_time=total,
            arm_time=sum(r.arm_time for r in results),
            rotation_time=sum(r.rotation_time for r in results),
            transfer_time=sum(r.transfer_time for r in results),
            nbytes=request.nbytes,
            op=OpKind.WRITE,
        )

    def submit_write(self, request: DiskRequest) -> DiskResult:
        """Write-back behaviour is delegated to members only for RAID 0/1."""
        if self.level is RaidLevel.RAID5:
            return self.service(request)
        if self.level is RaidLevel.RAID1:
            results = [m.submit_write(request) for m in self.members]
            return self._merge_parallel(results, OpKind.WRITE, request.nbytes)
        # RAID 0: stripe then cache on each member.
        per_member: dict[int, list[_MemberSlice]] = {}
        for sl in self._slices(request.offset, request.nbytes):
            per_member.setdefault(sl.member, []).append(sl)
        results = []
        for member, slices in per_member.items():
            dev = self.members[member]
            t = 0.0
            for sl in slices:
                t += dev.submit_write(DiskRequest(OpKind.WRITE, sl.offset, sl.nbytes)).service_time
            results.append(DiskResult(t, 0.0, 0.0, t, sum(s.nbytes for s in slices), OpKind.WRITE, cached=True))
        merged = self._merge_parallel(results, OpKind.WRITE, request.nbytes)
        return DiskResult(merged.service_time, merged.arm_time, merged.rotation_time,
                          merged.transfer_time, request.nbytes, OpKind.WRITE, cached=True)

    def flush_cache(self) -> DiskResult:
        """Drain any write-back cache to the media."""
        results = [m.flush_cache() for m in self.members]
        return self._merge_parallel(results, OpKind.WRITE,
                                    sum(r.nbytes for r in results))

    @property
    def dirty_bytes(self) -> int:
        """Bytes accepted but not yet persisted to the media."""
        return sum(m.dirty_bytes for m in self.members)

    def stream_time(self, nbytes: int, op: OpKind) -> float:
        """Contiguous stream: striped levels split the bytes across members."""
        if nbytes < 0:
            raise DeviceError("nbytes must be non-negative")
        if nbytes == 0:
            return 0.0
        if self.level is RaidLevel.RAID1:
            if op is OpKind.READ:
                return self.members[0].stream_time(nbytes, op)
            return max(m.stream_time(nbytes, op) for m in self.members)
        share = -(-nbytes // self.data_members)  # ceil division
        times = [m.stream_time(share, op) for m in self.members[: self.data_members]]
        if self.level is RaidLevel.RAID5 and op is OpKind.WRITE:
            # Full-stripe writes: parity computed inline, one extra member busy.
            times.append(self.members[-1].stream_time(share, op))
        return max(times)

    def reset(self) -> None:
        """Restore initial state (head position, caches, stats)."""
        for m in self.members:
            m.reset()
