"""RAID array model (future-work extension, Section VI.A).

Composes member block devices (HDD, SSD or NVRAM models) into one logical
device with the same servicing interface:

* **RAID 0** stripes extents across members; large transfers parallelize.
* **RAID 1** mirrors: reads go to one member (round-robin), writes to all.
* **RAID 5** stripes with rotating parity: reads behave like RAID 0 over
  ``n`` members; small writes pay the read-modify-write penalty (read old
  data + parity, write new data + parity).

Member service times for one logical request are taken in parallel (the
array completes when its slowest member does); energy/power aggregates over
all members.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

import numpy as np

from repro.errors import DeviceError, DeviceFailedError
from repro.machine.disk import (
    BatchComponents,
    DiskRequest,
    DiskResult,
    OpKind,
    batch_arrays,
    batch_result,
    empty_components,
    read_mask,
)
from repro.trace.events import Activity
from repro.units import KiB


class RaidLevel(enum.Enum):
    """Supported RAID levels."""
    RAID0 = 0
    RAID1 = 1
    RAID5 = 5


@dataclass(frozen=True)
class _MemberSlice:
    member: int
    offset: int
    nbytes: int


@dataclass(frozen=True)
class RebuildReport:
    """Cost of reconstructing one member onto a replacement drive.

    ``duration_s`` is wall time (survivor reads and the spare's write
    stream overlap; the slower side gates).  ``bytes_read`` counts traffic
    across all survivors (RAID 5 reads every survivor to re-XOR each
    stripe; RAID 1 reads one mirror).
    """

    member: int
    duration_s: float
    bytes_read: int
    bytes_written: int

    def activity(self) -> Activity:
        """Average array activity during the rebuild (for power pricing)."""
        if self.duration_s <= 0:
            return Activity()
        return Activity(
            disk_read_bytes_per_s=self.bytes_read / self.duration_s,
            disk_write_bytes_per_s=self.bytes_written / self.duration_s,
        )


class RaidArray:
    """A RAID set over homogeneous member devices.

    Parameters
    ----------
    members:
        Device models (duck-typed: ``service``, ``submit_write``,
        ``flush_cache``, ``stream_time``, ``spec``).
    level:
        RAID 0, 1 or 5.
    stripe_bytes:
        Stripe unit (chunk) size for striped levels.
    """

    def __init__(self, members: list, level: RaidLevel,
                 stripe_bytes: int = 64 * KiB) -> None:
        if not members:
            raise DeviceError("RAID array needs at least one member")
        if level is RaidLevel.RAID1 and len(members) < 2:
            raise DeviceError("RAID 1 needs at least two members")
        if level is RaidLevel.RAID5 and len(members) < 3:
            raise DeviceError("RAID 5 needs at least three members")
        if stripe_bytes <= 0:
            raise DeviceError("stripe size must be positive")
        self.members = list(members)
        self.level = level
        self.stripe_bytes = int(stripe_bytes)
        self._rr = 0  # round-robin read pointer for RAID 1
        self._failed_members: set[int] = set()

    # -- degraded mode -----------------------------------------------------------

    @property
    def degraded(self) -> bool:
        """True when at least one member has failed."""
        return bool(self._failed_members)

    @property
    def failed_members(self) -> tuple[int, ...]:
        """Indices of failed members, ascending."""
        return tuple(sorted(self._failed_members))

    def fail_member(self, index: int) -> None:
        """Mark one member as failed (it stops servicing requests)."""
        if not 0 <= index < self.n:
            raise DeviceError(f"no member {index} in array of {self.n}")
        self._failed_members.add(index)

    def _fault_tolerance(self) -> int:
        """How many member losses the level survives."""
        if self.level is RaidLevel.RAID0:
            return 0
        if self.level is RaidLevel.RAID5:
            return 1
        return self.n - 1

    def _check_tolerance(self) -> None:
        lost = len(self._failed_members)
        if lost > self._fault_tolerance():
            raise DeviceFailedError(
                f"{self.level.name} array lost member(s) "
                f"{self.failed_members}: data is unrecoverable"
            )

    def _member_result(self, member: int, op: OpKind, offset: int,
                       nbytes: int) -> DiskResult:
        """Service one member extent; a failed member contributes nothing."""
        if member in self._failed_members:
            return DiskResult(0.0, 0.0, 0.0, 0.0, 0, op)
        return self.members[member].service(DiskRequest(op, offset, nbytes))

    # -- geometry ---------------------------------------------------------------

    @property
    def n(self) -> int:
        """Number of member devices."""
        return len(self.members)

    @property
    def data_members(self) -> int:
        """Members contributing capacity (n for RAID0, 1 for RAID1, n-1 for RAID5)."""
        if self.level is RaidLevel.RAID0:
            return self.n
        if self.level is RaidLevel.RAID1:
            return 1
        return self.n - 1

    @property
    def capacity_bytes(self) -> int:
        """Usable capacity of the array in bytes."""
        member_cap = min(m.spec.capacity_bytes for m in self.members)
        return member_cap * self.data_members

    @property
    def idle_w(self) -> float:
        """Static power of all members combined (W)."""
        return sum(m.spec.idle_w for m in self.members)

    @property
    def spec(self):
        """Representative member spec (homogeneous array: member 0).

        Consumers read interface/power coefficients off it; per-array
        aggregates (capacity, idle power) come from the array itself.
        """
        return self.members[0].spec

    def _check_extent(self, offset: int, nbytes: int) -> None:
        if offset < 0 or offset + nbytes > self.capacity_bytes:
            raise DeviceError(
                f"extent [{offset}, {offset + nbytes}) outside array "
                f"of {self.capacity_bytes} bytes"
            )

    def _slices(self, offset: int, nbytes: int) -> list[_MemberSlice]:
        """Map a logical extent onto member extents (striped levels)."""
        out: list[_MemberSlice] = []
        pos = offset
        remaining = nbytes
        width = self.data_members
        while remaining > 0:
            stripe_index = pos // self.stripe_bytes
            within = pos % self.stripe_bytes
            take = min(self.stripe_bytes - within, remaining)
            member = stripe_index % width
            member_offset = (stripe_index // width) * self.stripe_bytes + within
            out.append(_MemberSlice(member, member_offset, take))
            pos += take
            remaining -= take
        return out

    # -- servicing ---------------------------------------------------------------

    def service(self, request: DiskRequest) -> DiskResult:
        """Service one request; returns its timing decomposition.

        A degraded array keeps servicing as long as the level's fault
        tolerance holds: RAID 1 reads surviving mirrors, RAID 5
        reconstructs lost slices by reading the same extent from every
        survivor.  Beyond tolerance (any RAID 0 loss, two RAID 5 losses)
        every access raises :class:`~repro.errors.DeviceFailedError`.
        """
        self._check_extent(request.offset, request.nbytes)
        if self._failed_members:
            self._check_tolerance()
        if self.level is RaidLevel.RAID1:
            return self._service_mirror(request)
        if self.level is RaidLevel.RAID5 and request.op is OpKind.WRITE:
            return self._service_raid5_write(request)
        return self._service_striped(request)

    def _merge_parallel(self, results: list[DiskResult], op: OpKind,
                        nbytes: int) -> DiskResult:
        """Array-level result: slowest member gates completion."""
        if not results:
            return DiskResult(0.0, 0.0, 0.0, 0.0, 0, op)
        return DiskResult(
            service_time=max(r.service_time for r in results),
            arm_time=max(r.arm_time for r in results),
            rotation_time=max(r.rotation_time for r in results),
            transfer_time=max(r.transfer_time for r in results),
            nbytes=nbytes,
            op=op,
        )

    def _service_striped(self, request: DiskRequest) -> DiskResult:
        per_member: dict[int, list[_MemberSlice]] = {}
        survivors = [m for m in range(self.n) if m not in self._failed_members]
        for sl in self._slices(request.offset, request.nbytes):
            if sl.member in self._failed_members:
                # Degraded RAID 5 read: reconstruct the lost slice by
                # reading the same stripe extent from every survivor and
                # XOR-ing (survivors work in parallel; the max-merge
                # below prices the slowest).
                for m in survivors:
                    per_member.setdefault(m, []).append(
                        _MemberSlice(m, sl.offset, sl.nbytes))
                continue
            per_member.setdefault(sl.member, []).append(sl)
        results = []
        for member, slices in per_member.items():
            dev = self.members[member]
            total = DiskResult(0.0, 0.0, 0.0, 0.0, 0, request.op)
            for sl in slices:
                r = dev.service(DiskRequest(request.op, sl.offset, sl.nbytes))
                total = DiskResult(
                    total.service_time + r.service_time,
                    total.arm_time + r.arm_time,
                    total.rotation_time + r.rotation_time,
                    total.transfer_time + r.transfer_time,
                    total.nbytes + r.nbytes,
                    request.op,
                )
            results.append(total)
        return self._merge_parallel(results, request.op, request.nbytes)

    def _service_mirror(self, request: DiskRequest) -> DiskResult:
        if request.op is OpKind.READ:
            for _ in range(self.n):
                target = self._rr % self.n
                self._rr += 1
                if target not in self._failed_members:
                    return self.members[target].service(request)
            raise DeviceFailedError("no surviving mirror to read from")
        results = [m.service(request) for i, m in enumerate(self.members)
                   if i not in self._failed_members]
        return self._merge_parallel(results, OpKind.WRITE, request.nbytes)

    def _service_raid5_write(self, request: DiskRequest) -> DiskResult:
        """Small-write penalty: read old data + old parity, write new both."""
        slices = self._slices(request.offset, request.nbytes)
        results = []
        for sl in slices:
            parity_member = (sl.member + 1) % self.n
            # A failed data or parity drive simply skips its ops (the
            # write lands on the survivor; parity is recomputed on rebuild).
            read_old = self._member_result(sl.member, OpKind.READ, sl.offset, sl.nbytes)
            read_parity = self._member_result(parity_member, OpKind.READ, sl.offset, sl.nbytes)
            write_new = self._member_result(sl.member, OpKind.WRITE, sl.offset, sl.nbytes)
            write_parity = self._member_result(parity_member, OpKind.WRITE, sl.offset, sl.nbytes)
            results.append(DiskResult(
                # data and parity drives operate in parallel; the two phases
                # (read-old, write-new) serialize.
                max(read_old.service_time, read_parity.service_time)
                + max(write_new.service_time, write_parity.service_time),
                read_old.arm_time + write_new.arm_time,
                read_old.rotation_time + write_new.rotation_time,
                read_old.transfer_time + write_new.transfer_time,
                sl.nbytes,
                OpKind.WRITE,
            ))
        total = sum(r.service_time for r in results)
        return DiskResult(
            service_time=total,
            arm_time=sum(r.arm_time for r in results),
            rotation_time=sum(r.rotation_time for r in results),
            transfer_time=sum(r.transfer_time for r in results),
            nbytes=request.nbytes,
            op=OpKind.WRITE,
        )

    def submit_write(self, request: DiskRequest) -> DiskResult:
        """Write-back behaviour is delegated to members only for RAID 0/1."""
        if self.level is RaidLevel.RAID5:
            return self.service(request)
        if self._failed_members:
            self._check_tolerance()
        if self.level is RaidLevel.RAID1:
            results = [m.submit_write(request) for i, m in enumerate(self.members)
                       if i not in self._failed_members]
            return self._merge_parallel(results, OpKind.WRITE, request.nbytes)
        # RAID 0: stripe then cache on each member.
        per_member: dict[int, list[_MemberSlice]] = {}
        for sl in self._slices(request.offset, request.nbytes):
            per_member.setdefault(sl.member, []).append(sl)
        results = []
        for member, slices in per_member.items():
            dev = self.members[member]
            t = 0.0
            for sl in slices:
                t += dev.submit_write(DiskRequest(OpKind.WRITE, sl.offset, sl.nbytes)).service_time
            results.append(DiskResult(t, 0.0, 0.0, t, sum(s.nbytes for s in slices), OpKind.WRITE, cached=True))
        merged = self._merge_parallel(results, OpKind.WRITE, request.nbytes)
        return DiskResult(merged.service_time, merged.arm_time, merged.rotation_time,
                          merged.transfer_time, request.nbytes, OpKind.WRITE, cached=True)

    # -- batched servicing -------------------------------------------------------

    def _slices_arrays(self, offs: np.ndarray, sizes: np.ndarray):
        """Vectorized :meth:`_slices` over a whole batch.

        Returns flat ``(req_idx, member, member_offset, take)`` arrays in
        the scalar decomposition order: requests in submission order, and
        each request's stripe pieces in ascending position.
        """
        stripe = self.stripe_bytes
        width = self.data_members
        first_take = np.minimum(stripe - offs % stripe, sizes)
        extra = (sizes - first_take + stripe - 1) // stripe
        if not extra.any():
            # No request crosses a stripe boundary (the common small-block
            # fio case): one slice per request, no repeat/scatter needed.
            stripe_idx = offs // stripe
            within = offs - stripe_idx * stripe
            member = stripe_idx % width
            member_offset = (stripe_idx // width) * stripe + within
            req_idx = np.arange(offs.size, dtype=np.int64)
            return req_idx, member, member_offset, sizes
        counts = 1 + extra
        total = int(counts.sum())
        req_idx = np.repeat(np.arange(offs.size, dtype=np.int64), counts)
        flat_start = np.repeat(np.cumsum(counts) - counts, counts)
        j = np.arange(total, dtype=np.int64) - flat_start
        off_r = offs[req_idx]
        size_r = sizes[req_idx]
        ft_r = first_take[req_idx]
        pos = np.where(j == 0, off_r, off_r + ft_r + (j - 1) * stripe)
        take = np.where(j == 0, ft_r,
                        np.minimum(stripe, size_r - ft_r - (j - 1) * stripe))
        stripe_idx = pos // stripe
        within = pos - stripe_idx * stripe
        member = stripe_idx % width
        member_offset = (stripe_idx // width) * stripe + within
        return req_idx, member, member_offset, take

    def service_components(self, offsets, nbytes, op) -> BatchComponents:
        """Vectorized :meth:`service` over a request stream.

        ``op`` must be uniform across the batch (an :class:`OpKind`, or an
        all-equal read-mask); mixed streams fall back to scalar servicing.
        """
        offs, sizes = batch_arrays(offsets, nbytes)
        n = offs.size
        if n == 0:
            return empty_components(0)
        if int((offs + sizes).max()) > self.capacity_bytes:
            raise DeviceError(
                f"batch extends outside array of {self.capacity_bytes} bytes"
            )
        if self._failed_members:
            # Degraded arrays take the scalar path so reconstruction and
            # survivor routing apply per request.
            self._check_tolerance()
            return self._components_scalar_fallback(offs, sizes, read_mask(op, n))
        if not isinstance(op, OpKind):
            mask = read_mask(op, n)
            if mask.all():
                op = OpKind.READ
            elif not mask.any():
                op = OpKind.WRITE
            else:
                return self._components_scalar_fallback(offs, sizes, mask)
        if self.level is RaidLevel.RAID1:
            return self._mirror_components(offs, sizes, op)
        if self.level is RaidLevel.RAID5 and op is OpKind.WRITE:
            return self._raid5_write_components(offs, sizes)
        return self._striped_components(offs, sizes, op)

    def _components_scalar_fallback(self, offs, sizes, mask) -> BatchComponents:
        comp = empty_components(offs.size)
        for i in range(offs.size):
            kind = OpKind.READ if mask[i] else OpKind.WRITE
            r = self.service(DiskRequest(kind, int(offs[i]), int(sizes[i])))
            comp.service[i] = r.service_time
            comp.arm[i] = r.arm_time
            comp.rotation[i] = r.rotation_time
            comp.transfer[i] = r.transfer_time
            comp.media_bytes[i] = r.nbytes
        return comp

    def _striped_components(self, offs, sizes, op: OpKind) -> BatchComponents:
        """RAID 0 (and RAID 5 reads): per-member slice streams, max-merged."""
        n = offs.size
        req_idx, member, moff, take = self._slices_arrays(offs, sizes)
        service = np.zeros(n, dtype=np.float64)
        arm = np.zeros(n, dtype=np.float64)
        rotation = np.zeros(n, dtype=np.float64)
        transfer = np.zeros(n, dtype=np.float64)
        for m, dev in enumerate(self.members):
            sel = np.nonzero(member == m)[0]
            if sel.size == 0:
                continue
            comp = dev.service_components(moff[sel], take[sel], op)
            ridx = req_idx[sel]
            # Per-request totals on this member, then slowest-member merge.
            np.maximum(service, np.bincount(ridx, comp.service, minlength=n),
                       out=service)
            np.maximum(arm, np.bincount(ridx, comp.arm, minlength=n), out=arm)
            np.maximum(rotation, np.bincount(ridx, comp.rotation, minlength=n),
                       out=rotation)
            np.maximum(transfer, np.bincount(ridx, comp.transfer, minlength=n),
                       out=transfer)
        return BatchComponents(service, arm, rotation, transfer, sizes.copy())

    def _mirror_components(self, offs, sizes, op: OpKind) -> BatchComponents:
        """RAID 1: round-robin reads, all-member max-merged writes."""
        n = offs.size
        if op is OpKind.READ:
            target = (self._rr + np.arange(n, dtype=np.int64)) % self.n
            self._rr += n
            service = np.zeros(n, dtype=np.float64)
            arm = np.zeros(n, dtype=np.float64)
            rotation = np.zeros(n, dtype=np.float64)
            transfer = np.zeros(n, dtype=np.float64)
            for m, dev in enumerate(self.members):
                sel = np.nonzero(target == m)[0]
                if sel.size == 0:
                    continue
                comp = dev.service_components(offs[sel], sizes[sel], OpKind.READ)
                service[sel] = comp.service
                arm[sel] = comp.arm
                rotation[sel] = comp.rotation
                transfer[sel] = comp.transfer
            return BatchComponents(service, arm, rotation, transfer, sizes.copy())
        parts = [dev.service_components(offs, sizes, OpKind.WRITE)
                 for dev in self.members]
        return BatchComponents(
            service=np.maximum.reduce([p.service for p in parts]),
            arm=np.maximum.reduce([p.arm for p in parts]),
            rotation=np.maximum.reduce([p.rotation for p in parts]),
            transfer=np.maximum.reduce([p.transfer for p in parts]),
            media_bytes=sizes.copy(),
        )

    def _raid5_write_components(self, offs, sizes) -> BatchComponents:
        """RAID 5 read-modify-write, vectorized per member stream.

        Each slice issues READ-then-WRITE on both its data and parity
        member; data and parity operate in parallel while the two phases
        serialize, matching the scalar :meth:`_service_raid5_write`.
        """
        n = offs.size
        req_idx, member, moff, take = self._slices_arrays(offs, sizes)
        n_slices = member.size
        parity = (member + 1) % self.n
        ro = empty_components(n_slices)   # read old data
        rp = empty_components(n_slices)   # read old parity
        wn = empty_components(n_slices)   # write new data
        wp = empty_components(n_slices)   # write new parity
        for m, dev in enumerate(self.members):
            sel = np.nonzero((member == m) | (parity == m))[0]
            if sel.size == 0:
                continue
            # Interleave the member's READ/WRITE pairs in global slice order.
            offs_m = np.repeat(moff[sel], 2)
            take_m = np.repeat(take[sel], 2)
            mask = np.tile(np.array([True, False]), sel.size)
            comp = dev.service_components(offs_m, take_m, mask)
            is_data = member[sel] == m
            for role_sel, reads, writes in ((is_data, ro, wn), (~is_data, rp, wp)):
                slots = sel[role_sel]
                reads.service[slots] = comp.service[0::2][role_sel]
                reads.arm[slots] = comp.arm[0::2][role_sel]
                reads.rotation[slots] = comp.rotation[0::2][role_sel]
                reads.transfer[slots] = comp.transfer[0::2][role_sel]
                writes.service[slots] = comp.service[1::2][role_sel]
                writes.arm[slots] = comp.arm[1::2][role_sel]
                writes.rotation[slots] = comp.rotation[1::2][role_sel]
                writes.transfer[slots] = comp.transfer[1::2][role_sel]
        slice_service = (np.maximum(ro.service, rp.service)
                         + np.maximum(wn.service, wp.service))
        return BatchComponents(
            service=np.bincount(req_idx, slice_service, minlength=n),
            arm=np.bincount(req_idx, ro.arm + wn.arm, minlength=n),
            rotation=np.bincount(req_idx, ro.rotation + wn.rotation, minlength=n),
            transfer=np.bincount(req_idx, ro.transfer + wn.transfer, minlength=n),
            media_bytes=sizes.copy(),
        )

    def service_batch(self, offsets, nbytes, op: OpKind) -> DiskResult:
        """Aggregate result for a batched :meth:`service` stream."""
        return batch_result(self.service_components(offsets, nbytes, op), op)

    def submit_write_components(self, offsets, nbytes) -> BatchComponents:
        """Vectorized :meth:`submit_write` over a write stream."""
        offs, sizes = batch_arrays(offsets, nbytes)
        n = offs.size
        if n == 0:
            return empty_components(0)
        if int((offs + sizes).max()) > self.capacity_bytes:
            raise DeviceError(
                f"batch extends outside array of {self.capacity_bytes} bytes"
            )
        if self._failed_members:
            self._check_tolerance()
            return self._submit_scalar_fallback(offs, sizes)
        if self.level is RaidLevel.RAID5:
            return self._raid5_write_components(offs, sizes)
        if self.level is RaidLevel.RAID1:
            parts = [dev.submit_write_components(offs, sizes)
                     for dev in self.members]
            return BatchComponents(
                service=np.maximum.reduce([p.service for p in parts]),
                arm=np.maximum.reduce([p.arm for p in parts]),
                rotation=np.maximum.reduce([p.rotation for p in parts]),
                transfer=np.maximum.reduce([p.transfer for p in parts]),
                # The scalar merge reports the request as uncached, so the
                # logical bytes are priced at acceptance time.
                media_bytes=sizes.copy(),
            )
        # RAID 0: stripe, then cache on each member; the member time is the
        # per-request sum of its cached acceptances, the array time the max.
        req_idx, member, moff, take = self._slices_arrays(offs, sizes)
        service = np.zeros(n, dtype=np.float64)
        for m, dev in enumerate(self.members):
            sel = np.nonzero(member == m)[0]
            if sel.size == 0:
                continue
            comp = dev.submit_write_components(moff[sel], take[sel])
            np.maximum(service, np.bincount(req_idx[sel], comp.service, minlength=n),
                       out=service)
        # Scalar path folds member results into (t, 0, 0, t, ..., cached=True);
        # cached acceptances price zero bytes, so media_bytes stays zero and
        # the drained traffic is accounted when the array cache flushes.
        return BatchComponents(
            service=service,
            arm=np.zeros(n, dtype=np.float64),
            rotation=np.zeros(n, dtype=np.float64),
            transfer=service.copy(),
            media_bytes=np.zeros(n, dtype=np.int64),
        )

    def _submit_scalar_fallback(self, offs, sizes) -> BatchComponents:
        comp = empty_components(offs.size)
        for i in range(offs.size):
            r = self.submit_write(DiskRequest(OpKind.WRITE, int(offs[i]),
                                              int(sizes[i])))
            comp.service[i] = r.service_time
            comp.arm[i] = r.arm_time
            comp.rotation[i] = r.rotation_time
            comp.transfer[i] = r.transfer_time
            comp.media_bytes[i] = 0 if r.cached else r.nbytes
        return comp

    def submit_write_batch(self, offsets, nbytes) -> DiskResult:
        """Aggregate result for a batched :meth:`submit_write` stream."""
        comp = self.submit_write_components(offsets, nbytes)
        cached = self.level is RaidLevel.RAID0
        return batch_result(comp, OpKind.WRITE, cached=cached)

    def flush_cache(self) -> DiskResult:
        """Drain any write-back cache to the media (survivors only)."""
        results = [m.flush_cache() for i, m in enumerate(self.members)
                   if i not in self._failed_members]
        return self._merge_parallel(results, OpKind.WRITE,
                                    sum(r.nbytes for r in results))

    # -- rebuild -----------------------------------------------------------------

    def rebuild(self, index: int, used_bytes: int | None = None) -> RebuildReport:
        """Reconstruct member ``index`` onto a replacement drive.

        ``used_bytes`` bounds the per-member region to copy (a real
        controller rebuilds the whole drive; bounding it to the allocated
        region models a smarter, bitmap-driven rebuild and keeps
        experiment runtimes sane).  Defaults to the full member capacity.

        Survivor reads and the spare's write stream overlap, so the wall
        time is the slower of the two at streaming rates; the report's
        :meth:`RebuildReport.activity` prices the traffic for the power
        model.  On return the member is healthy again (its model reset to
        factory state).
        """
        if index not in self._failed_members:
            raise DeviceError(f"member {index} is not failed")
        if self.level is RaidLevel.RAID0:
            raise DeviceFailedError("RAID0 has no redundancy to rebuild from")
        self._check_tolerance()
        span = used_bytes if used_bytes is not None \
            else min(m.spec.capacity_bytes for m in self.members)
        if span < 0:
            raise DeviceError("used_bytes must be non-negative")
        survivors = [m for i, m in enumerate(self.members)
                     if i != index and i not in self._failed_members]
        spare = self.members[index]
        spare.reset()
        if self.level is RaidLevel.RAID1:
            # Copy one surviving mirror.
            read_s = survivors[0].stream_time(span, OpKind.READ)
            bytes_read = span
        else:
            # RAID 5: re-XOR the lost member from every survivor's span.
            read_s = max(m.stream_time(span, OpKind.READ) for m in survivors)
            bytes_read = span * len(survivors)
        write_s = spare.stream_time(span, OpKind.WRITE)
        self._failed_members.discard(index)
        return RebuildReport(
            member=index,
            duration_s=max(read_s, write_s),
            bytes_read=bytes_read,
            bytes_written=span,
        )

    @property
    def dirty_bytes(self) -> int:
        """Bytes accepted but not yet persisted to the media."""
        return sum(m.dirty_bytes for m in self.members)

    def stream_time(self, nbytes: int, op: OpKind) -> float:
        """Contiguous stream: striped levels split the bytes across members."""
        if nbytes < 0:
            raise DeviceError("nbytes must be non-negative")
        if nbytes == 0:
            return 0.0
        if self.level is RaidLevel.RAID1:
            if op is OpKind.READ:
                return self.members[0].stream_time(nbytes, op)
            return max(m.stream_time(nbytes, op) for m in self.members)
        share = -(-nbytes // self.data_members)  # ceil division
        times = [m.stream_time(share, op) for m in self.members[: self.data_members]]
        if self.level is RaidLevel.RAID5 and op is OpKind.WRITE:
            # Full-stripe writes: parity computed inline, one extra member busy.
            times.append(self.members[-1].stream_time(share, op))
        return max(times)

    def reset(self) -> None:
        """Restore initial state (head position, caches, failures)."""
        for m in self.members:
            m.reset()
        self._failed_members.clear()
