"""DRAM timing and power model.

Power follows the linear traffic model used by RAPL's own DRAM-domain
estimator: a background term (refresh + standby for the populated DIMMs)
plus an energy-per-byte term for actual transfers.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import MachineError
from repro.machine.specs import DramSpec
from repro.units import GB


@dataclass
class DramModel:
    """DRAM timing and power model over a :class:`DramSpec`."""
    spec: DramSpec

    def transfer_time(self, nbytes: float) -> float:
        """Seconds to stream ``nbytes`` at peak bandwidth."""
        if nbytes < 0:
            raise MachineError("nbytes must be non-negative")
        return nbytes / self.spec.peak_bw_bytes_per_s

    def power(self, bytes_per_s: float) -> float:
        """DRAM-pool power at a sustained traffic rate.

        Raises if the requested rate exceeds what the DIMMs can move —
        that would mean the timing model upstream produced an impossible
        activity.
        """
        if bytes_per_s < 0:
            raise MachineError("bytes_per_s must be non-negative")
        if bytes_per_s > self.spec.peak_bw_bytes_per_s * 1.0001:
            raise MachineError(
                f"DRAM traffic {bytes_per_s / GB:.1f} GB/s exceeds peak "
                f"{self.spec.peak_bw_bytes_per_s / GB:.1f} GB/s"
            )
        return self.spec.idle_w + self.spec.energy_per_byte_j * bytes_per_s

    def dynamic_power(self, bytes_per_s: float) -> float:
        """Power above the idle floor (W)."""
        return self.power(bytes_per_s) - self.spec.idle_w

    def check_fits(self, nbytes: int) -> bool:
        """True if a dataset of ``nbytes`` fits in physical memory."""
        return 0 <= nbytes <= self.spec.capacity_bytes
