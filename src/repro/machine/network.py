"""Network interface and link models (multi-node extension).

The paper's future work asks for "a multi-node system to study the effect
of network I/O in addition to disk I/O".  These models provide latency +
bandwidth message timing (the alpha-beta model standard in HPC
communication analysis) and a linear traffic power model for the NIC.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import MachineError
from repro.machine.specs import NetworkSpec
from repro.units import GB


@dataclass
class LinkModel:
    """Point-to-point link: ``t(n) = latency + n / bandwidth``."""

    spec: NetworkSpec

    def transfer_time(self, nbytes: float) -> float:
        """Message time under the alpha-beta link model."""
        if nbytes < 0:
            raise MachineError("nbytes must be non-negative")
        if nbytes == 0:
            return 0.0
        return self.spec.latency_s + nbytes / self.spec.link_bw_bytes_per_s

    def effective_bandwidth(self, nbytes: float) -> float:
        """Achieved bytes/s for a message of ``nbytes`` (latency amortized)."""
        t = self.transfer_time(nbytes)
        return nbytes / t if t > 0 else 0.0


@dataclass
class NicModel:
    """Network interface card power: background + energy per byte."""

    spec: NetworkSpec

    def power(self, bytes_per_s: float) -> float:
        """Instantaneous power at the given load (W)."""
        if bytes_per_s < 0:
            raise MachineError("bytes_per_s must be non-negative")
        if bytes_per_s > self.spec.link_bw_bytes_per_s * 1.0001:
            raise MachineError(
                f"NIC traffic {bytes_per_s / GB:.2f} GB/s exceeds link rate"
            )
        return self.spec.idle_w + self.spec.energy_per_byte_j * bytes_per_s

    def dynamic_power(self, bytes_per_s: float) -> float:
        """Power above the idle floor (W)."""
        return self.power(bytes_per_s) - self.spec.idle_w
