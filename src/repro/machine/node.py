"""Node model: the full system under test.

Composes CPU, DRAM, storage device and NIC models with the constant
rest-of-system draw into the quantity both of the paper's meters observe:

* :meth:`Node.power` maps an :class:`~repro.trace.events.Activity` to a
  per-component power breakdown — the ground truth that the emulated RAPL
  and Wattsup meters sample (with their own noise and quantization).
* :attr:`Node.static_power_w` is the full-system idle floor, the quantity
  the paper's Section V.C energy-savings breakdown attributes "static"
  savings to.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import MachineError
from repro.machine.cpu import CpuModel
from repro.machine.disk import HddModel
from repro.machine.memory import DramModel
from repro.machine.network import NicModel
from repro.machine.raid import RaidArray
from repro.machine.specs import MachineSpec, paper_testbed
from repro.trace.events import Activity


@dataclass(frozen=True)
class ComponentPower:
    """Instantaneous power by component (W).

    ``package`` is what RAPL's PKG domain reports (both sockets); ``dram``
    is RAPL's DRAM domain; ``system`` is what the wall meter reports.
    """

    package: float
    dram: float
    disk: float
    net: float
    rest: float

    @property
    def system(self) -> float:
        """Full-system power: the sum of every component (W)."""
        return self.package + self.dram + self.disk + self.net + self.rest

    @property
    def unmetered(self) -> float:
        """Power invisible to RAPL: the paper estimates it as
        Wattsup minus (package + DRAM)."""
        return self.system - self.package - self.dram


class Node:
    """The simulated system under test.

    Parameters
    ----------
    spec:
        Hardware specification; defaults to the paper's Table I node.
    storage:
        Optional replacement storage device (SSD/NVRAM/RAID models) for
        the future-work device sweep; defaults to the spec'd HDD.
    """

    def __init__(self, spec: MachineSpec | None = None, storage=None) -> None:
        self.spec = spec or paper_testbed()
        self.cpu = CpuModel(self.spec.cpu)
        self.dram = DramModel(self.spec.dram)
        self.storage = storage if storage is not None else HddModel(self.spec.disk)
        self.nic = NicModel(self.spec.network)

    # -- power ---------------------------------------------------------------

    def _storage_power(self, activity: Activity) -> float:
        """Storage power from the device's calibrated coefficients.

        RAID arrays aggregate member idle power and split traffic across
        data members (each member's coefficients are identical).
        """
        dev = self.storage
        if isinstance(dev, RaidArray):
            member_spec = dev.members[0].spec
            idle = dev.idle_w
            spread = dev.data_members
            read_bw = activity.disk_read_bytes_per_s
            write_bw = activity.disk_write_bytes_per_s
            if dev.level.name == "RAID1":
                write_bw *= dev.n  # mirrored writes hit every member
            seek = activity.disk_seek_duty * dev.n
            return (
                idle
                + member_spec.read_energy_per_byte_j * read_bw
                + member_spec.write_energy_per_byte_j * write_bw
                + member_spec.actuator_w * min(seek, dev.n)
            )
        spec = dev.spec
        return (
            spec.idle_w
            + spec.read_energy_per_byte_j * activity.disk_read_bytes_per_s
            + spec.write_energy_per_byte_j * activity.disk_write_bytes_per_s
            + spec.actuator_w * activity.disk_seek_duty
        )

    def power(self, activity: Activity) -> ComponentPower:
        """Instantaneous per-component power for a given activity."""
        return ComponentPower(
            package=self.cpu.power(activity.cpu_util, activity.cpu_freq_ratio),
            dram=self.dram.power(activity.dram_bytes_per_s),
            disk=self._storage_power(activity),
            net=self.nic.power(activity.net_bytes_per_s),
            rest=self.spec.rest_of_system_w,
        )

    @property
    def static_power_w(self) -> float:
        """Full-system power with every component idle."""
        return self.power(Activity()).system

    def dynamic_power(self, activity: Activity) -> float:
        """System power above the static floor for ``activity``."""
        return self.power(activity).system - self.static_power_w

    # -- sanity ----------------------------------------------------------------

    def validate(self) -> None:
        """Cross-check composed model invariants; raises MachineError."""
        idle = self.power(Activity())
        if idle.system <= 0:
            raise MachineError("idle system power must be positive")
        busy = self.power(Activity(cpu_util=1.0))
        if busy.system <= idle.system:
            raise MachineError("busy CPU must draw more than idle")

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Node(spec={self.spec.name!r}, "
            f"storage={type(self.storage).__name__}, "
            f"static={self.static_power_w:.1f} W)"
        )
