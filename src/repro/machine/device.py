"""The uniform block-device protocol and the flash-class base model.

Everything the storage stack talks to — :class:`~repro.machine.disk.HddModel`,
:class:`~repro.machine.ssd.SsdModel`, :class:`~repro.machine.nvram.NvramModel`
and :class:`~repro.machine.raid.RaidArray` — declares :class:`BlockDevice`:
scalar servicing (``service`` / ``submit_write`` / ``flush_cache``), batched
servicing (``service_batch`` / ``submit_write_batch`` plus the per-request
``*_components`` kernels the RAID merge needs), and lifecycle (``reset``).
Consumers dispatch on the protocol instead of duck-typed ``getattr`` /
``hasattr`` probes.

:class:`LatencyBandwidthModel` implements the whole protocol for stateless
devices whose service time is a fixed per-op latency plus bytes over a
direction-dependent media rate — the SSD and NVRAM models subclass it and
only contribute their spec.
"""

from __future__ import annotations

from typing import Protocol, runtime_checkable

import numpy as np

from repro.errors import DeviceError
from repro.machine.disk import (
    BatchComponents,
    DiskRequest,
    DiskResult,
    OpKind,
    batch_arrays,
    batch_result,
    empty_components,
    read_mask,
)


@runtime_checkable
class BlockDevice(Protocol):
    """What every storage device model (and RAID of them) provides."""

    @property
    def spec(self):
        """Device specification (capacity, rates, power coefficients)."""
        ...

    @property
    def capacity_bytes(self) -> int:
        """Usable capacity in bytes."""
        ...

    @property
    def dirty_bytes(self) -> int:
        """Bytes accepted but not yet persisted to the media."""
        ...

    def service(self, request: DiskRequest) -> DiskResult:
        """Service one request against the media (bypassing write cache)."""
        ...

    def submit_write(self, request: DiskRequest) -> DiskResult:
        """Accept one write (through the write cache where present)."""
        ...

    def flush_cache(self) -> DiskResult:
        """Drain any write-back cache to the media."""
        ...

    def service_components(self, offsets, nbytes, op) -> BatchComponents:
        """Per-request timing for a batched :meth:`service` stream."""
        ...

    def service_batch(self, offsets, nbytes, op: OpKind) -> DiskResult:
        """Aggregate result for a batched :meth:`service` stream."""
        ...

    def submit_write_components(self, offsets, nbytes) -> BatchComponents:
        """Per-request timing for a batched :meth:`submit_write` stream."""
        ...

    def submit_write_batch(self, offsets, nbytes) -> DiskResult:
        """Aggregate result for a batched :meth:`submit_write` stream."""
        ...

    def stream_time(self, nbytes: int, op: OpKind) -> float:
        """Seconds to move ``nbytes`` contiguously."""
        ...

    def reset(self) -> None:
        """Restore initial state (positions, caches)."""
        ...


class LatencyBandwidthModel:
    """Stateless device: per-op fixed latency + bytes / media rate.

    Subclasses set ``self.spec`` to an object with ``capacity_bytes``,
    ``seq_read_bw`` / ``seq_write_bw`` (B/s) and ``read_latency_s`` /
    ``write_latency_s`` fields.
    """

    spec = None  # set by subclass __init__

    @property
    def capacity_bytes(self) -> int:
        """Usable capacity in bytes."""
        return self.spec.capacity_bytes

    def _check_extent(self, offset: int, nbytes: int) -> None:
        if offset < 0 or offset + nbytes > self.spec.capacity_bytes:
            raise DeviceError(
                f"extent [{offset}, {offset + nbytes}) outside device "
                f"of {self.spec.capacity_bytes} bytes"
            )

    def media_rate(self, op: OpKind) -> float:
        """Sustained media transfer rate for the given operation (B/s)."""
        return self.spec.seq_read_bw if op is OpKind.READ else self.spec.seq_write_bw

    def _latency(self, op: OpKind) -> float:
        return self.spec.read_latency_s if op is OpKind.READ else self.spec.write_latency_s

    # -- scalar servicing -------------------------------------------------------

    def service(self, request: DiskRequest) -> DiskResult:
        """Service one request; returns its timing decomposition."""
        self._check_extent(request.offset, request.nbytes)
        transfer = request.nbytes / self.media_rate(request.op)
        return DiskResult(
            service_time=self._latency(request.op) + transfer,
            arm_time=0.0,
            rotation_time=0.0,
            transfer_time=transfer,
            nbytes=request.nbytes,
            op=request.op,
        )

    def submit_write(self, request: DiskRequest) -> DiskResult:
        """Accept a write (no write-back cache: services immediately)."""
        if request.op is not OpKind.WRITE:
            raise DeviceError("submit_write requires a WRITE request")
        return self.service(request)

    def flush_cache(self) -> DiskResult:
        """Drain any write-back cache to the media (nothing to drain)."""
        return DiskResult(0.0, 0.0, 0.0, 0.0, 0, OpKind.WRITE)

    @property
    def dirty_bytes(self) -> int:
        """Bytes accepted but not yet persisted to the media."""
        return 0

    # -- batched servicing ------------------------------------------------------

    def service_components(self, offsets, nbytes, op) -> BatchComponents:
        """Vectorized :meth:`service` over a request stream."""
        offs, sizes = batch_arrays(offsets, nbytes)
        n = offs.size
        if n == 0:
            return empty_components(0)
        if int((offs + sizes).max()) > self.spec.capacity_bytes:
            raise DeviceError(
                f"batch extends outside device of {self.spec.capacity_bytes} bytes"
            )
        is_read = read_mask(op, n)
        rate = np.where(is_read, self.spec.seq_read_bw, self.spec.seq_write_bw)
        latency = np.where(is_read, self.spec.read_latency_s, self.spec.write_latency_s)
        transfer = sizes / rate
        zeros = np.zeros(n, dtype=np.float64)
        return BatchComponents(
            service=latency + transfer,
            arm=zeros,
            rotation=zeros.copy(),
            transfer=transfer,
            media_bytes=sizes.copy(),
        )

    def service_batch(self, offsets, nbytes, op: OpKind) -> DiskResult:
        """Aggregate result for a batched :meth:`service` stream."""
        return batch_result(self.service_components(offsets, nbytes, op), op)

    def submit_write_components(self, offsets, nbytes) -> BatchComponents:
        """Vectorized :meth:`submit_write` (write-through: same as service)."""
        return self.service_components(offsets, nbytes, OpKind.WRITE)

    def submit_write_batch(self, offsets, nbytes) -> DiskResult:
        """Aggregate result for a batched :meth:`submit_write` stream."""
        return batch_result(self.submit_write_components(offsets, nbytes), OpKind.WRITE)

    # -- streaming / lifecycle --------------------------------------------------

    def stream_time(self, nbytes: int, op: OpKind) -> float:
        """Seconds to move ``nbytes`` contiguously."""
        if nbytes < 0:
            raise DeviceError("nbytes must be non-negative")
        if nbytes == 0:
            return 0.0
        return self._latency(op) + nbytes / self.media_rate(op)

    def seek_time(self, distance_bytes: int) -> float:
        """No mechanics; 'seeking' is free."""
        if distance_bytes < 0:
            raise DeviceError("distance must be non-negative")
        return 0.0

    def reset(self) -> None:
        """No mutable state to reset."""
