"""Hardware specifications (the paper's Table I) and power calibration.

Two kinds of numbers live here:

* **Nameplate specs** straight from Table I of the paper (core counts,
  frequencies, capacities, interface rates).
* **Calibrated power/timing coefficients**, derived in
  :mod:`repro.experiments.calibration` from the paper's measured numbers
  (Table II, Table III, Section V.A).  Each coefficient's derivation is
  documented on its field.

`paper_testbed()` returns the fully-populated spec for the system under
test; all experiments use it unless they deliberately vary hardware
(the future-work device sweep).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import ConfigError
from repro.units import GB, GHZ, GiB, KiB, MS, MiB, gbps_to_bytes_per_s


@dataclass(frozen=True)
class CpuSpec:
    """CPU package specification and power coefficients.

    The power model is ``P = idle + dynamic_max * util**alpha`` at nominal
    frequency, scaled by ``(f/f_nom)**3`` for DVFS what-if studies (cubic:
    dynamic power ~ C V^2 f with V roughly linear in f).

    Calibration: the paper's profiles (Fig 5) show the processor drawing
    ~45 W across both packages when idle and ~75 W during the simulation
    stage, i.e. +30 W dynamic.  With a proxy app that keeps about 30 % of
    the node's 16 cores busy, ``dynamic_max_w = 100`` reproduces that.
    """

    model: str = "Intel Xeon E5-2665"
    sockets: int = 2
    cores_per_socket: int = 8
    base_freq_hz: float = 2.4e9
    max_freq_hz: float = 2.4e9
    llc_bytes: int = 20 * MiB
    #: Package idle power, both sockets combined (W).
    idle_w: float = 44.0
    #: Additional power at 100 % utilization, nominal frequency (W).
    dynamic_max_w: float = 100.0
    #: Utilization exponent; 1.0 = linear (measured Sandy Bridge parts are
    #: close to linear in active-core count).
    alpha: float = 1.0
    #: Nominal per-core double-precision throughput used to convert modeled
    #: FLOP counts into time (8 DP FLOPs/cycle on Sandy Bridge AVX).
    flops_per_core: float = 2.4e9 * 8

    @property
    def total_cores(self) -> int:
        """Total cores across all sockets."""
        return self.sockets * self.cores_per_socket

    @property
    def peak_flops(self) -> float:
        """Peak double-precision FLOP rate of the package."""
        return self.total_cores * self.flops_per_core

    def __post_init__(self) -> None:
        if self.sockets <= 0 or self.cores_per_socket <= 0:
            raise ConfigError("CPU must have at least one socket and core")
        if self.idle_w < 0 or self.dynamic_max_w < 0:
            raise ConfigError("CPU power coefficients must be non-negative")
        if self.alpha <= 0:
            raise ConfigError("alpha must be positive")


@dataclass(frozen=True)
class DramSpec:
    """Main-memory specification and power coefficients.

    Calibration: RAPL's DRAM domain in Fig 5 reads ~9 W at idle (background
    + refresh for 4 x 16 GB DIMMs) and ~17 W during simulation.  With the
    simulation stage generating ~5 GB/s of modeled traffic, the access
    energy lands at 1.64 nJ/B — in line with DDR3 activate+IO energy plus
    termination.
    """

    kind: str = "DDR3-1333"
    dimms: int = 4
    capacity_bytes: int = 64 * GiB
    peak_bw_bytes_per_s: float = 2 * 51.2e9 / 2  # 4ch/socket DDR3-1333, derated
    #: Background (idle + refresh) power for the whole pool (W).
    idle_w: float = 9.0
    #: Energy per byte actually transferred (J/B).
    energy_per_byte_j: float = 1.64e-9

    def __post_init__(self) -> None:
        if self.capacity_bytes <= 0:
            raise ConfigError("DRAM capacity must be positive")
        if self.idle_w < 0 or self.energy_per_byte_j < 0:
            raise ConfigError("DRAM power coefficients must be non-negative")


@dataclass(frozen=True)
class DiskSpec:
    """Rotating-disk specification, mechanics, and power coefficients.

    Timing calibration (Table III, 4 GiB fio jobs):

    * sequential read 35.9 s  => effective read bandwidth 119.6 MB/s
    * sequential write 27.0 s => effective write bandwidth 159.1 MB/s
      (write-back caching lets the drive stream at media rate)
    * random read (16 KiB blocks) 2230 s => 8.50 ms per op =
      arm seek over the file's 0.86 % stroke span (~1.9 ms) + average
      rotational latency (4.17 ms at 7200 rpm) + settle/controller
      (2.3 ms) + transfer (0.14 ms)
    * random write 31.0 s => write-back cache + elevator coalesce the
      stream to near-sequential with a 15 % reorder penalty.

    Power calibration (Table III full-system minus the 104.8 W static
    floor established by Table II):

    * sequential read dynamic 13.5 W  => read-channel energy 0.113 nJ/B
    * sequential write dynamic 10.9 W => write-channel energy 0.0685 nJ/B
    * random read dynamic 2.5 W at actuator (arm-travel) duty ~0.23 =>
      actuator 10 W (0.22 W of it is the read channel at 1.9 MB/s);
      settle/controller time is electronics, not actuator power
    """

    model: str = "Seagate 7200rpm 500GB"
    capacity_bytes: int = 500 * GB
    rpm: float = 7200.0
    interface_bw_bytes_per_s: float = gbps_to_bytes_per_s(6.0)  # SATA 6 Gbps
    #: Sustained media rates (bytes/s).
    seq_read_bw: float = 4 * GiB / 35.9
    seq_write_bw: float = 4 * GiB / 27.0
    #: Seek curve t(d) = t2t + b * sqrt(d), d = stroke fraction in [0,1].
    track_to_track_s: float = 1.2 * MS
    seek_curve_b_s: float = 12.7 * MS  # gives 8.5 ms at d=0.33 (vendor avg)
    #: Head settle + controller overhead per random op.
    settle_s: float = 2.3 * MS
    #: On-drive write cache.
    cache_bytes: int = 64 * MiB
    write_cache: bool = True
    #: Throughput penalty for cache-coalesced random writes vs sequential.
    random_write_penalty: float = 31.0 / 27.0
    #: Actuator-active time per coalesced-extent switch during a cache
    #: drain.  The hops overlap streaming (the drive schedules them into
    #: rotational gaps), so they show up in *power*, not throughput.
    #: Calibrated from Table III's random write: 13.4 W dynamic at
    #: 138.6 MB/s needs ~0.40 actuator duty => 0.75 ms per switch.
    coalesced_hop_s: float = 0.75 * MS
    #: Power coefficients.
    idle_w: float = 5.5
    read_energy_per_byte_j: float = 13.5 / (4 * GiB / 35.9)
    write_energy_per_byte_j: float = 10.9 / (4 * GiB / 27.0)
    actuator_w: float = 10.0

    def __post_init__(self) -> None:
        if self.capacity_bytes <= 0:
            raise ConfigError("disk capacity must be positive")
        if self.rpm <= 0:
            raise ConfigError("disk rpm must be positive")
        if min(self.seq_read_bw, self.seq_write_bw) <= 0:
            raise ConfigError("disk bandwidth must be positive")


@dataclass(frozen=True)
class NetworkSpec:
    """NIC / interconnect specification (multi-node extension).

    The paper's study is single-node; these defaults describe the QDR
    InfiniBand class of interconnect its future-work section targets.
    """

    kind: str = "QDR InfiniBand"
    link_bw_bytes_per_s: float = 4e9
    latency_s: float = 2e-6
    idle_w: float = 2.0
    energy_per_byte_j: float = 0.3e-9

    def __post_init__(self) -> None:
        if self.link_bw_bytes_per_s <= 0:
            raise ConfigError("link bandwidth must be positive")


@dataclass(frozen=True)
class MachineSpec:
    """Full node specification: Table I plus calibrated power floors.

    ``rest_of_system_w`` is the motherboard + fans + PSU-overhead constant
    the paper estimates by subtracting RAPL (package + DRAM) from the
    Wattsup reading.  Calibrated so the idle system draws 104.8 W, the
    static floor implied by Table II (nnwrite total 114.8 W minus its
    10.0 W dynamic component).
    """

    name: str = "supermicro-sandybridge"
    cpu: CpuSpec = field(default_factory=CpuSpec)
    dram: DramSpec = field(default_factory=DramSpec)
    disk: DiskSpec = field(default_factory=DiskSpec)
    network: NetworkSpec = field(default_factory=NetworkSpec)
    rest_of_system_w: float = 44.3

    @property
    def idle_system_w(self) -> float:
        """Full-system static power: what the wall meter reads at idle."""
        return (
            self.cpu.idle_w + self.dram.idle_w + self.disk.idle_w
            + self.network.idle_w + self.rest_of_system_w
        )

    def table1_rows(self) -> list[tuple[str, str]]:
        """The paper's Table I, as (hardware type, detail) rows."""
        return [
            ("CPU", f"{self.cpu.sockets}x {self.cpu.model}"),
            ("CPU frequency", f"{self.cpu.base_freq_hz / GHZ:.1f} GHz"),
            ("Last-level cache", f"{self.cpu.llc_bytes // MiB} MB"),
            ("Memory", f"{self.dram.dimms}x {self.dram.capacity_bytes // self.dram.dimms // GiB}GB {self.dram.kind}"),
            ("Memory size", f"{self.dram.capacity_bytes // GiB} GB"),
            ("Hard disk", self.disk.model),
            ("Storage size", f"{self.disk.capacity_bytes // GB}GB"),
            ("Disk bandwidth", f"{self.disk.interface_bw_bytes_per_s * 8 / GB:.1f} Gbps"),
        ]


def paper_testbed() -> MachineSpec:
    """The system under test from Table I, with calibrated power model."""
    return MachineSpec()
