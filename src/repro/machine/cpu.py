"""CPU timing and power model.

Timing: converts modeled work (double-precision FLOPs, or an explicit
parallel-efficiency-adjusted core count) into seconds on the spec'd part.

Power: ``P = idle + dynamic_max * util**alpha * (f/f_nom)**3``.  The cubic
frequency term supports the DVFS what-if analyses the paper's Section V.C
motivates ("other techniques such as frequency scaling ... may help").
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigError, MachineError
from repro.machine.specs import CpuSpec
from repro.units import GHZ


@dataclass
class CpuModel:
    """Stateful CPU model: current frequency is mutable (DVFS)."""

    spec: CpuSpec
    freq_hz: float = 0.0  # 0 => use spec.base_freq_hz

    def __post_init__(self) -> None:
        if self.freq_hz == 0.0:
            self.freq_hz = self.spec.base_freq_hz
        self._check_freq(self.freq_hz)

    def _check_freq(self, f: float) -> None:
        if not 0 < f <= self.spec.max_freq_hz * 1.0001:
            raise ConfigError(
                f"frequency {f / GHZ:.2f} GHz outside (0, "
                f"{self.spec.max_freq_hz / GHZ:.2f}] GHz"
            )

    # -- DVFS -----------------------------------------------------------------

    def set_frequency(self, f_hz: float) -> None:
        """Set the operating frequency (applies to all cores)."""
        self._check_freq(f_hz)
        self.freq_hz = f_hz

    @property
    def freq_ratio(self) -> float:
        """Current operating frequency as a fraction of nominal."""
        return self.freq_hz / self.spec.base_freq_hz

    # -- timing ---------------------------------------------------------------

    def compute_time(self, flops: float, cores: int | None = None,
                     efficiency: float = 1.0) -> float:
        """Seconds to execute ``flops`` on ``cores`` cores.

        ``efficiency`` is the fraction of peak actually achieved (memory
        stalls, vectorization gaps); stencil codes typically land at 5-15 %
        of peak.
        """
        if flops < 0:
            raise MachineError("flops must be non-negative")
        if not 0 < efficiency <= 1.0:
            raise MachineError(f"efficiency must be in (0, 1], got {efficiency}")
        n = self.spec.total_cores if cores is None else cores
        if not 0 < n <= self.spec.total_cores:
            raise MachineError(
                f"cores must be in [1, {self.spec.total_cores}], got {n}"
            )
        rate = n * self.spec.flops_per_core * self.freq_ratio * efficiency
        return flops / rate

    def utilization(self, cores_busy: float) -> float:
        """Node-level utilization fraction for ``cores_busy`` busy cores."""
        if cores_busy < 0 or cores_busy > self.spec.total_cores:
            raise MachineError(
                f"cores_busy must be in [0, {self.spec.total_cores}]"
            )
        return cores_busy / self.spec.total_cores

    # -- power ----------------------------------------------------------------

    def power(self, util: float, freq_ratio: float | None = None) -> float:
        """Package power (both sockets) at utilization ``util``.

        ``freq_ratio`` overrides the model's current DVFS state for this
        evaluation (per-span frequency from an Activity); None uses the
        sticky :meth:`set_frequency` state.
        """
        if not 0.0 <= util <= 1.0 + 1e-12:
            raise MachineError(f"util must be in [0, 1], got {util}")
        ratio = self.freq_ratio if freq_ratio is None else freq_ratio
        if not 0.0 < ratio <= 1.0 + 1e-12:
            raise MachineError(f"freq_ratio must be in (0, 1], got {ratio}")
        dvfs = ratio ** 3
        return self.spec.idle_w + self.spec.dynamic_max_w * (min(util, 1.0) ** self.spec.alpha) * dvfs

    def dynamic_power(self, util: float, freq_ratio: float | None = None) -> float:
        """Power above idle at utilization ``util``."""
        return self.power(util, freq_ratio) - self.spec.idle_w
