"""Exception hierarchy for the reproduction library.

Every error raised by :mod:`repro` derives from :class:`ReproError`, so a
caller embedding the library can catch one type.  Sub-hierarchies mirror the
subsystem structure (configuration, machine models, storage stack,
measurement, pipelines).
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the ``repro`` package."""


class ConfigError(ReproError, ValueError):
    """An experiment or model configuration is invalid."""


class MachineError(ReproError):
    """A hardware-model invariant was violated."""


class DeviceError(MachineError):
    """A block device was asked to do something impossible (bad LBA, size...)."""


class StorageError(ReproError):
    """Filesystem / page-cache / data-format level error."""


class FileFormatError(StorageError):
    """A chunked data container is malformed or fails checksum validation."""


class FileNotFound(StorageError, KeyError):
    """Named file does not exist in the simulated filesystem."""


class MeasurementError(ReproError):
    """Power-measurement substrate misuse (unsampled meter, bad domain...)."""


class PipelineError(ReproError):
    """A pipeline was misconfigured or run out of order."""


class SimulationError(ReproError):
    """Numerical simulation failure (instability, bad grid...)."""


class RenderError(ReproError):
    """Visualization-stage failure (bad field, empty image...)."""
