"""Exception hierarchy for the reproduction library.

Every error raised by :mod:`repro` derives from :class:`ReproError`, so a
caller embedding the library can catch one type.  Sub-hierarchies mirror the
subsystem structure (configuration, machine models, storage stack,
measurement, pipelines).
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the ``repro`` package."""


class ConfigError(ReproError, ValueError):
    """An experiment or model configuration is invalid."""


class MachineError(ReproError):
    """A hardware-model invariant was violated."""


class DeviceError(MachineError):
    """A block device was asked to do something impossible (bad LBA, size...)."""


class FaultError(MachineError):
    """An injected storage fault interrupted an operation.

    Raised by :class:`~repro.faults.device.FaultyDevice`.  Carries the
    modeled cost of the failed attempt (``elapsed_s``) so the retry layer
    can charge it, plus batch-resume bookkeeping: ``prefix`` is the
    aggregate :class:`~repro.machine.disk.DiskResult` of the requests
    serviced before the fault, ``failed_index`` the batch-relative index
    of the faulting request.
    """

    #: Whether a bounded-retry policy may re-attempt the operation.
    retryable = True

    def __init__(self, message: str, *, elapsed_s: float = 0.0,
                 op_index: int | None = None,
                 failed_index: int | None = None,
                 prefix: object = None) -> None:
        super().__init__(message)
        self.elapsed_s = elapsed_s
        self.op_index = op_index
        self.failed_index = failed_index
        self.prefix = prefix


class TransientIOError(FaultError):
    """A transient I/O error (bus glitch, command timeout): retry succeeds."""


class LatentSectorError(FaultError):
    """A latent sector error: the sector fails several re-reads in a row."""


class DramBitFlipError(FaultError):
    """A DRAM bit flip detected on a read path (ECC reported, data re-fetched)."""


class DeviceFailedError(FaultError):
    """The whole device failed; no retry can help, only replacement."""

    retryable = False


class RetryExhaustedError(MachineError):
    """A bounded retry policy gave up on an operation."""


class StorageError(ReproError):
    """Filesystem / page-cache / data-format level error."""


class FileFormatError(StorageError):
    """A chunked data container is malformed or fails checksum validation."""


class FileNotFound(StorageError, KeyError):
    """Named file does not exist in the simulated filesystem."""


class MeasurementError(ReproError):
    """Power-measurement substrate misuse (unsampled meter, bad domain...)."""


class ServiceError(ReproError):
    """Experiment-serving layer failure (transport, shutdown, bad reply).

    ``status`` carries the HTTP status when the failure is a server
    reply (so the cluster router can tell an admission-control shed, 503,
    from a dead shard, ``status=None``); ``retry_after_s`` carries the
    server's back-off hint when it sent one.
    """

    def __init__(self, message: str, *, status: int | None = None,
                 retry_after_s: float | None = None) -> None:
        super().__init__(message)
        self.status = status
        self.retry_after_s = retry_after_s


class CodecError(ReproError):
    """Binary result codec failure (truncated, corrupt, or foreign bytes)."""


class PipelineError(ReproError):
    """A pipeline was misconfigured or run out of order."""


class PipelineInterrupted(PipelineError):
    """A device failure interrupted a run mid-way.

    Carries the pipeline's :class:`~repro.pipelines.base.InterruptState`
    (``state``) so a resilient runner can repair the device and resume
    from the last durable point.
    """

    def __init__(self, message: str, *, state: object = None) -> None:
        super().__init__(message)
        self.state = state


class SimulationError(ReproError):
    """Numerical simulation failure (instability, bad grid...)."""


class RenderError(ReproError):
    """Visualization-stage failure (bad field, empty image...)."""
