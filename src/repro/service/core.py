"""The long-lived experiment-serving core.

:class:`ExperimentService` turns the batch engine into a warm serving
stack shaped like an inference server:

* **Warm worker pool** — requests execute on a fixed thread pool whose
  workers each hold primed :class:`~repro.experiments.figures.Lab`\\ s
  (one per seed, LRU-bounded).  A Lab is constructed once per
  (worker, seed) — restored from the engine's warm-Lab snapshot when
  the disk tier holds one — and reused across requests, so repeat
  traffic skips testbed construction and shares the Lab's memoized
  pipeline runs.
  Experiments are pure functions of ``(seed, testbed spec)``, so a warm
  Lab returns byte-identical payloads to a cold serial run.
* **Two-tier cache** — a thread-safe in-memory LRU
  (:class:`~repro.service.cache.LruCache`) over the engine's
  content-addressed disk store, both addressed by the same sha256
  :func:`~repro.experiments.engine.cache_key`.  Memory hits never touch
  the pool; disk hits are promoted into memory.
* **Request coalescing (single-flight)** — concurrent requests for the
  same key collapse onto one in-flight computation: the first request
  computes, every concurrent duplicate waits on the shared future and
  receives the same result object.  Distinct keys proceed in parallel
  up to the configured worker count.

The CLI's ``repro serve`` wraps this in an HTTP transport
(:mod:`repro.service.http`); ``benchmarks/bench_serve.py`` drives it
in-process.  Both observe the same counters via :meth:`stats`.
"""

from __future__ import annotations

import threading
import time
from collections import OrderedDict
from concurrent.futures import Future, ThreadPoolExecutor
from dataclasses import dataclass
from typing import Callable

from repro.errors import ConfigError, ServiceError
from repro.experiments.engine import (
    cache_key,
    drop_result,
    load_lab_snapshot,
    load_result,
    pickle_result,
    store_result,
)
from repro.experiments.figures import ExperimentResult, Lab
from repro.experiments.registry import get_experiment
from repro.rng import DEFAULT_SEED
from repro.service.cache import DEFAULT_MAX_BYTES, DEFAULT_MAX_ENTRIES, LruCache


@dataclass(frozen=True)
class ServiceConfig:
    """Knobs of one serving instance.

    ``jobs`` bounds concurrent computations (the worker pool width);
    ``cache_dir`` arms the persistent disk tier; ``mem_entries`` /
    ``mem_bytes`` bound the hot tier; ``labs_per_worker`` bounds how
    many primed seeds each worker keeps warm.
    """

    jobs: int = 2
    cache_dir: str | None = None
    mem_entries: int = DEFAULT_MAX_ENTRIES
    mem_bytes: int = DEFAULT_MAX_BYTES
    labs_per_worker: int = 4

    def __post_init__(self) -> None:
        if self.jobs < 1:
            raise ConfigError(f"jobs must be >= 1, got {self.jobs}")
        if self.labs_per_worker < 1:
            raise ConfigError(
                f"labs_per_worker must be >= 1, got {self.labs_per_worker}")


@dataclass(frozen=True)
class Served:
    """One fulfilled request: the payload plus how it was produced.

    ``source`` is ``"memory"``, ``"disk"``, ``"computed"``, or
    ``"coalesced"`` (waited on another request's in-flight compute).
    """

    experiment_id: str
    seed: int
    result: ExperimentResult
    source: str
    elapsed_s: float


class ExperimentService:
    """Serve experiment results from warm workers behind a two-tier cache.

    ``compute`` defaults to running the registry function on the
    worker's warm Lab; tests inject a controlled callable to probe the
    coalescing machinery without paying for real experiments.
    """

    def __init__(self, config: ServiceConfig | None = None,
                 compute: Callable[[str, Lab], ExperimentResult] | None = None,
                 ) -> None:
        self.config = config or ServiceConfig()
        self._compute = compute or (lambda eid, lab: get_experiment(eid)(lab))
        self._mem = LruCache(max_entries=self.config.mem_entries,
                             max_bytes=self.config.mem_bytes)
        self._pool = ThreadPoolExecutor(max_workers=self.config.jobs,
                                        thread_name_prefix="repro-serve")
        self._local = threading.local()
        self._lock = threading.Lock()
        self._inflight: dict[str, Future] = {}  # gl: guarded-by=_lock
        self._closed = False  # gl: guarded-by=_lock
        self._started_monotonic = time.monotonic()
        # Monotonic counters (under self._lock).
        self._requests = 0  # gl: guarded-by=_lock
        self._coalesced = 0  # gl: guarded-by=_lock
        self._disk_hits = 0  # gl: guarded-by=_lock
        self._computed = 0  # gl: guarded-by=_lock
        self._errors = 0  # gl: guarded-by=_lock
        self._labs_built = 0  # gl: guarded-by=_lock
        self._labs_restored = 0  # gl: guarded-by=_lock
        self._invalidations = 0  # gl: guarded-by=_lock

    # -- worker side ------------------------------------------------------------

    def _lab_for(self, seed: int) -> Lab:
        """This worker thread's primed Lab for ``seed`` (LRU of seeds).

        When the disk tier is armed and holds a warm-Lab snapshot for
        the seed, the Lab is deserialized from it (milliseconds) instead
        of constructed cold — the snapshot carries the memoized shared
        pipeline runs, so even a fresh process computes requests at
        warm-Lab speed.
        """
        labs: OrderedDict[int, Lab] | None = getattr(self._local, "labs", None)
        if labs is None:
            labs = self._local.labs = OrderedDict()
        lab = labs.get(seed)
        if lab is None:
            if self.config.cache_dir is not None:
                lab = load_lab_snapshot(self.config.cache_dir, seed)
            if lab is not None:
                with self._lock:
                    self._labs_restored += 1
            else:
                lab = Lab(seed=seed)
                with self._lock:
                    self._labs_built += 1
        else:
            del labs[seed]
        labs[seed] = lab
        while len(labs) > self.config.labs_per_worker:
            labs.popitem(last=False)
        return lab

    def _fulfill(self, key: str, experiment_id: str, seed: int,
                 fut: Future) -> None:
        """Worker body: disk tier, else compute on the warm Lab."""
        try:
            source = "disk"
            result = None
            if self.config.cache_dir is not None:
                result = load_result(self.config.cache_dir, experiment_id, seed)
            if result is None:
                source = "computed"
                result = self._compute(experiment_id, self._lab_for(seed))
                if self.config.cache_dir is not None:
                    store_result(self.config.cache_dir, experiment_id, seed,
                                 result)
            self._mem.put(key, result, len(pickle_result(result)))
        except Exception as exc:
            with self._lock:
                self._errors += 1
                self._inflight.pop(key, None)
            fut.set_exception(exc)
        else:
            with self._lock:
                if source == "disk":
                    self._disk_hits += 1
                else:
                    self._computed += 1
                self._inflight.pop(key, None)
            fut.set_result((result, source))

    # -- request side -----------------------------------------------------------

    def serve(self, experiment_id: str,
              seed: int = DEFAULT_SEED) -> Served:
        """Fulfill one request, reporting which tier produced it."""
        get_experiment(experiment_id)  # fail fast on unknown ids
        # Serving latency is real wall time by design — it measures this
        # process, never the simulated machine, so it cannot bias results.
        start = time.perf_counter()  # greenlint: ignore[GL6]
        key = cache_key(experiment_id, seed)
        with self._lock:
            if self._closed:
                raise ServiceError("service is closed")
            self._requests += 1
            hit = self._mem.get(key)
            if hit is not None:
                return Served(
                    experiment_id, seed, hit, "memory",
                    time.perf_counter() - start)  # greenlint: ignore[GL6]
            fut = self._inflight.get(key)
            if fut is not None:
                self._coalesced += 1
                waited = True
            else:
                waited = False
                fut = Future()
                self._inflight[key] = fut
        if not waited:
            try:
                self._pool.submit(self._fulfill, key, experiment_id, seed, fut)
            except RuntimeError as exc:  # pool shut down under us
                with self._lock:
                    self._inflight.pop(key, None)
                raise ServiceError(f"service is closed: {exc}") from exc
        result, source = fut.result()
        return Served(
            experiment_id, seed, result,
            "coalesced" if waited else source,
            time.perf_counter() - start)  # greenlint: ignore[GL6]

    def run(self, experiment_id: str,
            seed: int = DEFAULT_SEED) -> ExperimentResult:
        """Fulfill one request; the payload only."""
        return self.serve(experiment_id, seed).result

    def run_many(self, experiment_ids: list[str],
                 seed: int = DEFAULT_SEED) -> dict[str, ExperimentResult]:
        """Fan a batch of requests over the pool; results in input order."""
        for eid in experiment_ids:
            get_experiment(eid)
        with ThreadPoolExecutor(
                max_workers=max(1, min(self.config.jobs,
                                       len(experiment_ids) or 1)),
                thread_name_prefix="repro-serve-batch") as requesters:
            futures = [requesters.submit(self.serve, eid, seed)
                       for eid in experiment_ids]
            served = [f.result() for f in futures]
        return {s.experiment_id: s.result for s in served}

    def invalidate(self, experiment_id: str,
                   seed: int = DEFAULT_SEED) -> bool:
        """Drop one key from both tiers; True when either held it.

        Requests already in flight for the key are unaffected (they
        complete and may re-populate the tiers); the next request after
        an invalidation recomputes.  The cluster router fans this out to
        every shard so replicated hot keys stay coherent.
        """
        get_experiment(experiment_id)  # fail fast on unknown ids
        key = cache_key(experiment_id, seed)
        dropped_mem = self._mem.remove(key)
        dropped_disk = False
        if self.config.cache_dir is not None:
            dropped_disk = drop_result(self.config.cache_dir,
                                       experiment_id, seed)
        with self._lock:
            self._invalidations += 1
        return dropped_mem or dropped_disk

    # -- observability / lifecycle ----------------------------------------------

    def stats(self) -> dict:
        """Counter snapshot: requests, tiers, coalescing, pool."""
        with self._lock:
            return {
                "requests": self._requests,
                "coalesced": self._coalesced,
                "disk_hits": self._disk_hits,
                "computed": self._computed,
                "errors": self._errors,
                "labs_built": self._labs_built,
                "labs_restored": self._labs_restored,
                "invalidations": self._invalidations,
                "inflight": len(self._inflight),
                "uptime_s": time.monotonic() - self._started_monotonic,
                "jobs": self.config.jobs,
                "cache_dir": self.config.cache_dir,
                "memory": self._mem.stats(),
            }

    def close(self, wait: bool = True) -> None:
        """Reject new requests and shut the pool down."""
        with self._lock:
            self._closed = True
        self._pool.shutdown(wait=wait)

    def __enter__(self) -> "ExperimentService":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()
