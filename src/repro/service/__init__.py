"""Warm experiment-serving layer: cache tiers, coalescing, transport.

The batch engine (:mod:`repro.experiments.engine`) answers "reproduce
the evaluation once, fast"; this package answers "keep answering".  An
:class:`ExperimentService` holds warm per-worker Labs behind a two-tier
(memory LRU over content-addressed disk) cache with single-flight
request coalescing; :mod:`repro.service.http` exposes it over JSON/HTTP
for ``repro serve`` and ``repro query``.
"""

from repro.service.cache import LruCache
from repro.service.core import ExperimentService, Served, ServiceConfig
from repro.service.http import (
    DEFAULT_PORT,
    ExperimentHTTPServer,
    make_server,
    result_digest,
)

__all__ = [
    "DEFAULT_PORT",
    "ExperimentHTTPServer",
    "ExperimentService",
    "LruCache",
    "Served",
    "ServiceConfig",
    "make_server",
    "result_digest",
]
