"""Thread-safe in-memory LRU — the hot tier of the serving cache.

The serving layer keeps two result tiers that share one key scheme
(:func:`repro.experiments.engine.cache_key`'s sha256 digest, covering
engine version, package version, seed, experiment id, and the testbed
spec), so the tiers can never disagree about what a key means:

* **memory** (this module): an LRU bounded by entry count *and*
  approximate bytes, holding live :class:`ExperimentResult` objects for
  microsecond hits;
* **disk** (:mod:`repro.experiments.engine`): the content-addressed
  pickle store that survives restarts; memory misses fall through to it
  and promote what they find.

The LRU is deliberately generic (any value, caller-supplied size) so
tests can exercise the bound and eviction order without building
experiment results.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from typing import Any

from repro.errors import ConfigError
from repro.units import MiB

#: Default bounds: plenty for the whole registry at several seeds while
#: keeping the resident set far below the science-cache budget.
DEFAULT_MAX_ENTRIES = 128
DEFAULT_MAX_BYTES = 256 * MiB


class LruCache:
    """Bounded, thread-safe LRU mapping keys to (value, approx bytes).

    Either bound evicts: inserting past ``max_entries`` or past
    ``max_bytes`` drops least-recently-used entries until both hold.  A
    single value larger than ``max_bytes`` is refused outright (storing
    it would evict the entire working set for one entry).  ``get`` marks
    recency; hit/miss/eviction counters are monotonic.
    """

    def __init__(self, max_entries: int = DEFAULT_MAX_ENTRIES,
                 max_bytes: int = DEFAULT_MAX_BYTES) -> None:
        if max_entries < 1:
            raise ConfigError(f"max_entries must be >= 1, got {max_entries}")
        if max_bytes < 1:
            raise ConfigError(f"max_bytes must be >= 1, got {max_bytes}")
        self.max_entries = max_entries
        self.max_bytes = max_bytes
        self._lock = threading.Lock()
        self._entries: OrderedDict[Any, tuple[Any, int]] = OrderedDict()  # gl: guarded-by=_lock
        self._bytes = 0  # gl: guarded-by=_lock
        self.hits = 0  # gl: guarded-by=_lock
        self.misses = 0  # gl: guarded-by=_lock
        self.evictions = 0  # gl: guarded-by=_lock

    def get(self, key: Any) -> Any | None:
        """The cached value (marked most recent), or None."""
        with self._lock:
            hit = self._entries.get(key)
            if hit is None:
                self.misses += 1
                return None
            self._entries.move_to_end(key)
            self.hits += 1
            return hit[0]

    def put(self, key: Any, value: Any, nbytes: int) -> bool:
        """Insert ``value`` charged at ``nbytes``; False when refused."""
        if nbytes < 0:
            raise ConfigError(f"nbytes must be >= 0, got {nbytes}")
        if nbytes > self.max_bytes:
            return False
        with self._lock:
            old = self._entries.pop(key, None)
            if old is not None:
                self._bytes -= old[1]
            self._entries[key] = (value, nbytes)
            self._bytes += nbytes
            while (len(self._entries) > self.max_entries
                   or self._bytes > self.max_bytes):
                _evicted_key, (_value, evicted_bytes) = self._entries.popitem(
                    last=False)
                self._bytes -= evicted_bytes
                self.evictions += 1
            return True

    def remove(self, key: Any) -> bool:
        """Drop one entry (invalidation); True when it was present."""
        with self._lock:
            entry = self._entries.pop(key, None)
            if entry is None:
                return False
            self._bytes -= entry[1]
            return True

    def clear(self) -> None:
        """Drop every entry (counters are preserved)."""
        with self._lock:
            self._entries.clear()
            self._bytes = 0

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, key: Any) -> bool:
        with self._lock:
            return key in self._entries

    def keys(self) -> list[Any]:
        """Keys from least to most recently used (a snapshot)."""
        with self._lock:
            return list(self._entries)

    @property
    def nbytes(self) -> int:
        """Approximate bytes currently held."""
        return self._bytes

    def stats(self) -> dict[str, int]:
        """Counter snapshot for the /stats endpoint."""
        with self._lock:
            return {
                "entries": len(self._entries),
                "bytes": self._bytes,
                "max_entries": self.max_entries,
                "max_bytes": self.max_bytes,
                "hits": self.hits,
                "misses": self.misses,
                "evictions": self.evictions,
            }
