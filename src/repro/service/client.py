"""Client side of the serving protocol (``repro query``), stdlib only.

A thin :mod:`urllib` wrapper around the endpoints of
:mod:`repro.service.http`.  Transport failures — connection refused, a
non-JSON reply, an HTTP error status — surface as
:class:`~repro.errors.ServiceError` carrying the server's message, so
the CLI can report them without a traceback.
"""

from __future__ import annotations

import json
import urllib.error
import urllib.request

from repro.errors import ServiceError
from repro.rng import DEFAULT_SEED
from repro.service.http import DEFAULT_PORT

DEFAULT_TIMEOUT_S = 300.0


def _request(url: str, body: dict | None = None,
             timeout_s: float = DEFAULT_TIMEOUT_S) -> dict:
    """One JSON round trip; raises ServiceError on any transport failure."""
    data = None
    headers = {"Accept": "application/json"}
    if body is not None:
        data = json.dumps(body).encode()
        headers["Content-Type"] = "application/json"
    req = urllib.request.Request(url, data=data, headers=headers)
    try:
        with urllib.request.urlopen(req, timeout=timeout_s) as reply:
            raw = reply.read()
    except urllib.error.HTTPError as exc:
        try:
            message = json.loads(exc.read()).get("error", str(exc))
        except (json.JSONDecodeError, UnicodeDecodeError, AttributeError):
            message = str(exc)
        raise ServiceError(f"server rejected request: {message}") from exc
    except (urllib.error.URLError, TimeoutError, OSError) as exc:
        raise ServiceError(f"cannot reach {url}: {exc}") from exc
    try:
        payload = json.loads(raw)
    except (json.JSONDecodeError, UnicodeDecodeError) as exc:
        raise ServiceError(f"non-JSON reply from {url}") from exc
    if not isinstance(payload, dict):
        raise ServiceError(f"malformed reply from {url}")
    return payload


def base_url(host: str = "127.0.0.1", port: int = DEFAULT_PORT) -> str:
    """Root URL of a serving endpoint."""
    return f"http://{host}:{port}"


def query(experiment_id: str, seed: int = DEFAULT_SEED,
          host: str = "127.0.0.1", port: int = DEFAULT_PORT,
          timeout_s: float = DEFAULT_TIMEOUT_S) -> dict:
    """Run one experiment on a remote service; the /run reply dict."""
    return _request(f"{base_url(host, port)}/run",
                    body={"experiment": experiment_id, "seed": seed},
                    timeout_s=timeout_s)


def stats(host: str = "127.0.0.1", port: int = DEFAULT_PORT,
          timeout_s: float = DEFAULT_TIMEOUT_S) -> dict:
    """The service's counter snapshot."""
    return _request(f"{base_url(host, port)}/stats", timeout_s=timeout_s)


def health(host: str = "127.0.0.1", port: int = DEFAULT_PORT,
           timeout_s: float = DEFAULT_TIMEOUT_S) -> dict:
    """Liveness probe."""
    return _request(f"{base_url(host, port)}/health", timeout_s=timeout_s)
