"""Client side of the serving protocol (``repro query``), stdlib only.

:class:`ServiceClient` keeps one HTTP/1.1 keep-alive connection to a
serving endpoint (``repro serve`` or a cluster router) and re-uses it
across requests, so repeated small queries stop paying per-request TCP
setup — the before/after is recorded by ``benchmarks/bench_serve.py``.
Every round trip is bounded: a connect timeout while establishing the
connection, a read timeout once it is up, and a bounded
deterministic-backoff retry loop (re-using
:class:`~repro.faults.retry.RetryPolicy`) around transport failures, so
a dead server surfaces as a prompt :class:`~repro.errors.ServiceError`
instead of hanging the CLI forever.

Retry semantics: transport-level failures (connection refused or reset,
timeouts, a torn keep-alive connection) drop the connection and retry
with ``RetryPolicy.backoff_s``'s jitter-free schedule; an HTTP 503 shed
reply honours the server's ``Retry-After`` hint (capped) before
retrying; any other HTTP error is not retried — the server answered,
the request itself is bad.  Requests are pure lookups/computations, so
re-sending one is always safe.

The module-level helpers (:func:`query`, :func:`stats`, ...) open a
transient client per call — the CLI's one-shot shape — while the router
holds one :class:`ServiceClient` per (thread, shard) for its forwarding
fan-out.
"""

from __future__ import annotations

import http.client
import json
import socket
import threading
import time

from repro.errors import ConfigError, ServiceError
from repro.faults.retry import RetryPolicy
from repro.rng import DEFAULT_SEED
from repro.service.http import DEFAULT_PORT

#: Establishing the TCP connection: fail fast, the server is local/near.
DEFAULT_CONNECT_TIMEOUT_S = 5.0
#: Waiting for a reply: cold experiment computes take real seconds.
DEFAULT_READ_TIMEOUT_S = 300.0
#: Bounded transport retries with a deterministic 50 ms / 100 ms backoff.
DEFAULT_RETRY = RetryPolicy(max_attempts=3, backoff_base_s=0.05,
                            backoff_factor=2.0, jitter_fraction=0.0)
#: Never sleep longer than this on a server-sent ``Retry-After`` hint.
RETRY_AFTER_CAP_S = 2.0


def base_url(host: str = "127.0.0.1", port: int = DEFAULT_PORT) -> str:
    """Root URL of a serving endpoint."""
    return f"http://{host}:{port}"


def _hangup(conn: http.client.HTTPConnection) -> None:
    """Best-effort close of a (possibly torn) connection."""
    try:
        conn.close()
    except OSError:  # pragma: no cover - close is best-effort
        pass


class ServiceClient:
    """A keep-alive JSON client for one serving endpoint.

    One instance owns (at most) one TCP connection; a lock serializes
    requests on it, so sharing an instance across threads is safe but
    defeats pipelining — give each thread its own client (the router
    does, via ``threading.local``).
    """

    def __init__(self, host: str = "127.0.0.1", port: int = DEFAULT_PORT,
                 connect_timeout_s: float = DEFAULT_CONNECT_TIMEOUT_S,
                 read_timeout_s: float = DEFAULT_READ_TIMEOUT_S,
                 retry: RetryPolicy = DEFAULT_RETRY) -> None:
        if connect_timeout_s <= 0:
            raise ConfigError(
                f"connect_timeout_s must be positive, got {connect_timeout_s}")
        if read_timeout_s <= 0:
            raise ConfigError(
                f"read_timeout_s must be positive, got {read_timeout_s}")
        self.host = host
        self.port = port
        self.connect_timeout_s = connect_timeout_s
        self.read_timeout_s = read_timeout_s
        self.retry = retry
        self._lock = threading.Lock()
        self._conn: http.client.HTTPConnection | None = None  # gl: guarded-by=_lock
        self._connects = 0  # gl: guarded-by=_lock
        self._retries = 0  # gl: guarded-by=_lock

    # -- connection management ---------------------------------------------------

    def _dial(self) -> http.client.HTTPConnection:
        """A fresh connected keep-alive connection (no state writes)."""
        conn = http.client.HTTPConnection(
            self.host, self.port, timeout=self.connect_timeout_s)
        try:
            conn.connect()
            if conn.sock is not None:
                # The connect timeout bounded establishment; from here on
                # the socket waits for replies, which may be slow computes.
                conn.sock.settimeout(self.read_timeout_s)
                # Nagle + delayed ACK stalls the second small write of a
                # request (body after headers) on a keep-alive connection
                # by ~40 ms; flush segments immediately instead.
                conn.sock.setsockopt(socket.IPPROTO_TCP,
                                     socket.TCP_NODELAY, 1)
        except Exception:
            _hangup(conn)
            raise
        return conn

    def close(self) -> None:
        """Close the underlying connection (the client stays usable)."""
        with self._lock:
            if self._conn is not None:
                _hangup(self._conn)
                self._conn = None

    def __enter__(self) -> "ServiceClient":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    # -- transport ---------------------------------------------------------------

    @staticmethod
    def _round_trip(conn: http.client.HTTPConnection, method: str, path: str,
                    payload: bytes | None) -> tuple[int, str | None, bytes,
                                                    bool]:
        """One request/reply on an established connection (no retries).

        The trailing bool reports whether the server is closing the
        connection (the caller must then drop it from the pool).
        """
        headers = {"Accept": "application/json"}
        if payload is not None:
            headers["Content-Type"] = "application/json"
        conn.request(method, path, body=payload, headers=headers)
        reply = conn.getresponse()
        raw = reply.read()
        retry_after = reply.getheader("Retry-After")
        return reply.status, retry_after, raw, reply.will_close

    def _decode(self, status: int, raw: bytes, url: str,
                retry_after: str | None = None) -> dict:
        try:
            payload = json.loads(raw)
        except (json.JSONDecodeError, UnicodeDecodeError) as exc:
            raise ServiceError(f"non-JSON reply from {url}",
                               status=status) from exc
        if not isinstance(payload, dict):
            raise ServiceError(f"malformed reply from {url}", status=status)
        if status >= 400:
            message = payload.get("error", f"HTTP {status}")
            raise ServiceError(f"server rejected request: {message}",
                               status=status,
                               retry_after_s=_retry_after_s(retry_after))
        return payload

    # gl: idempotent — _connects/_retries deliberately count attempts;
    # the exchange itself is a GET or a content-addressed /run POST.
    def request(self, path: str, body: dict | None = None,
                method: str | None = None) -> dict:
        """One JSON exchange with bounded retries; the decoded reply.

        Raises :class:`ServiceError` on exhaustion, a non-retried HTTP
        error, or a malformed reply.
        """
        payload = json.dumps(body).encode() if body is not None else None
        method = method or ("POST" if payload is not None else "GET")
        url = f"{base_url(self.host, self.port)}{path}"
        with self._lock:
            for attempt in range(1, self.retry.max_attempts + 1):
                last = attempt == self.retry.max_attempts
                try:
                    if self._conn is None:
                        self._conn = self._dial()
                        self._connects += 1
                    status, retry_after, raw, will_close = self._round_trip(
                        self._conn, method, path, payload)
                except (OSError, http.client.HTTPException) as exc:
                    if self._conn is not None:
                        _hangup(self._conn)
                        self._conn = None
                    if last:
                        raise ServiceError(
                            f"cannot reach {url} after {attempt} "
                            f"attempt(s): {exc}") from exc
                    self._retries += 1
                    # jitter_u=0.5 keeps the schedule pure/deterministic.
                    # Transport backoff, not experiment math; wall-clock
                    # by design.
                    time.sleep(self.retry.backoff_s(  # greenlint: ignore[GL6]
                        attempt, jitter_u=0.5))
                    continue
                if will_close:
                    _hangup(self._conn)
                    self._conn = None
                if status == 503 and not last:
                    # The server shed the request; honour its hint.
                    self._retries += 1
                    time.sleep(min(  # greenlint: ignore[GL6]
                        _retry_after_s(retry_after)
                        or self.retry.backoff_s(attempt, 0.5),
                        RETRY_AFTER_CAP_S))
                    continue
                return self._decode(status, raw, url, retry_after)
        raise ServiceError(f"cannot reach {url}")  # pragma: no cover

    # -- endpoints ---------------------------------------------------------------

    def run(self, experiment_id: str, seed: int = DEFAULT_SEED) -> dict:
        """Run one experiment on the remote service; the /run reply."""
        return self.request("/run",
                            body={"experiment": experiment_id, "seed": seed})

    def stats(self) -> dict:
        """The remote service's counter snapshot."""
        return self.request("/stats")

    def health(self) -> dict:
        """Liveness probe."""
        return self.request("/health")

    def status(self) -> dict:
        """Identity / config snapshot."""
        return self.request("/status")

    def invalidate(self, experiment_id: str,
                   seed: int = DEFAULT_SEED) -> dict:
        """Drop one key from the remote cache tiers."""
        return self.request("/invalidate",
                            body={"experiment": experiment_id, "seed": seed})

    def transport_stats(self) -> dict[str, int]:
        """Connection reuse counters (connects, transport retries)."""
        with self._lock:
            return {"connects": self._connects, "retries": self._retries}


def _retry_after_s(header: str | None) -> float | None:
    """Parse a ``Retry-After`` seconds value; None when absent/bad."""
    if header is None:
        return None
    try:
        value = float(header)
    except ValueError:
        return None
    return value if value >= 0 else None


def _one_shot(host: str, port: int, timeout_s: float,
              retry: RetryPolicy | None) -> ServiceClient:
    return ServiceClient(host, port, read_timeout_s=timeout_s,
                         retry=retry or DEFAULT_RETRY)


def query(experiment_id: str, seed: int = DEFAULT_SEED,
          host: str = "127.0.0.1", port: int = DEFAULT_PORT,
          timeout_s: float = DEFAULT_READ_TIMEOUT_S,
          retry: RetryPolicy | None = None) -> dict:
    """Run one experiment on a remote service; the /run reply dict."""
    with _one_shot(host, port, timeout_s, retry) as client:
        return client.run(experiment_id, seed)


def stats(host: str = "127.0.0.1", port: int = DEFAULT_PORT,
          timeout_s: float = DEFAULT_READ_TIMEOUT_S,
          retry: RetryPolicy | None = None) -> dict:
    """The service's counter snapshot."""
    with _one_shot(host, port, timeout_s, retry) as client:
        return client.stats()


def health(host: str = "127.0.0.1", port: int = DEFAULT_PORT,
           timeout_s: float = DEFAULT_READ_TIMEOUT_S,
           retry: RetryPolicy | None = None) -> dict:
    """Liveness probe."""
    with _one_shot(host, port, timeout_s, retry) as client:
        return client.health()
