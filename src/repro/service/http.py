"""JSON-over-HTTP transport for the experiment service (stdlib only).

``repro serve`` binds an :class:`~repro.service.core.ExperimentService`
behind :class:`http.server.ThreadingHTTPServer` — every connection gets
a handler thread, so concurrent identical requests genuinely race into
the service and exercise its single-flight path.

Endpoints (all JSON):

``GET /health``
    Liveness: package version and a constant ``{"status": "ok"}``.
``GET /status``
    Identity: experiment ids, serving config, uptime, in-flight count.
``GET /stats``
    The service's counter snapshot (tiers, coalescing, pool).
``POST /run`` (or ``GET /run?experiment=ID&seed=N``)
    Fulfill a request.  Body: ``{"experiment": "fig10", "seed": 2015}``.
    Reply carries the rendered text, the serving ``source`` (memory /
    disk / computed / coalesced), the wall latency, and the sha256
    digest of the result's canonical pickle — the transport-level
    witness that served payloads are byte-identical to a cold serial
    run.

Errors map to status codes: unknown route 404, malformed request 400,
unknown experiment id 400, internal failure 500.  Nothing here touches
experiment math; the transport is a thin shell over the in-process API.
"""

from __future__ import annotations

import hashlib
import json
import socket
import sys
import threading
import weakref
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from urllib.parse import parse_qs, urlsplit

from repro.errors import ConfigError, ReproError
from repro.experiments.engine import pickle_result
from repro.experiments.registry import EXPERIMENTS
from repro.rng import DEFAULT_SEED
from repro.service.core import ExperimentService, Served
from repro.units import KiB, MS
from repro.version import __version__

#: Default TCP port: "RP" on a phone keypad, above the ephemeral floor.
DEFAULT_PORT = 8077
#: Cap on accepted request bodies; run requests are a few dozen bytes.
MAX_BODY_BYTES = 64 * KiB


#: Digest memo keyed by result identity.  ``/run`` digests its payload on
#: every reply, but the hot path serves the *same* result object out of
#: the in-memory LRU over and over — repickling ~100 KB per request just
#: to rehash it would dominate warm-hit latency.  While a result object
#: is alive its id is unique, and a finalizer evicts the entry when the
#: LRU drops it, before the id can be reused.
_DIGESTS: dict[int, str] = {}
_DIGESTS_LOCK = threading.Lock()


def result_digest(result: object) -> str:
    """sha256 hex digest of the result's canonical pickle bytes."""
    key = id(result)
    with _DIGESTS_LOCK:
        hit = _DIGESTS.get(key)
    if hit is not None:
        return hit
    digest = hashlib.sha256(pickle_result(result)).hexdigest()
    try:
        weakref.finalize(result, _DIGESTS.pop, key, None)
    except TypeError:  # pragma: no cover - non-weakref-able payload
        return digest
    with _DIGESTS_LOCK:
        _DIGESTS[key] = digest
    return digest


def _served_payload(served: Served) -> dict:
    return {
        "experiment": served.experiment_id,
        "seed": served.seed,
        "title": served.result.title,
        "text": served.result.text,
        "source": served.source,
        "elapsed_ms": round(served.elapsed_s / MS, 3),
        "digest": result_digest(served.result),
    }


class ServiceRequestHandler(BaseHTTPRequestHandler):
    """Routes HTTP verbs onto the wrapped ExperimentService."""

    server_version = f"repro-serve/{__version__}"
    protocol_version = "HTTP/1.1"
    # Small JSON replies must not sit behind Nagle waiting for the ACK
    # of the previous keep-alive exchange (a ~40 ms stall per request).
    disable_nagle_algorithm = True

    def log_message(self, format: str, *args: object) -> None:  # noqa: A002
        if getattr(self.server, "verbose", False):  # pragma: no cover
            super().log_message(format, *args)

    # -- plumbing ---------------------------------------------------------------

    def _reply(self, status: int, payload: dict,
               headers: dict[str, str] | None = None) -> None:
        # HTTP/1.1 keep-alive: the explicit Content-Length lets the
        # connection carry the next request instead of closing, so
        # per-request TCP setup stops dominating small hot replies.
        body = json.dumps(payload, sort_keys=True).encode()
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        for name, value in (headers or {}).items():
            self.send_header(name, value)
        self.end_headers()
        self.wfile.write(body)

    def _error(self, status: int, message: str) -> None:
        self._reply(status, {"error": message})

    @property
    def _service(self) -> ExperimentService:
        return self.server.service

    def _run_params(self) -> tuple[str, int]:
        """(experiment id, seed) from the query string or JSON body."""
        split = urlsplit(self.path)
        params = {k: v[-1] for k, v in parse_qs(split.query).items()}
        if self.command == "POST":
            length = int(self.headers.get("Content-Length") or 0)
            if length > MAX_BODY_BYTES:
                # The oversized body stays unread; keep-alive would hand
                # it to the next request parse, so end the connection.
                # (close_connection is per-handler-instance state — one
                # handler per connection per thread — not shared.)
                self.close_connection = True  # greenlint: ignore[GL14]
                raise ConfigError(f"request body over {MAX_BODY_BYTES} bytes")
            if length:
                try:
                    body = json.loads(self.rfile.read(length) or b"{}")
                except (json.JSONDecodeError, UnicodeDecodeError) as exc:
                    raise ConfigError(f"request body is not JSON: {exc}") from exc
                if not isinstance(body, dict):
                    raise ConfigError("request body must be a JSON object")
                params.update(body)
        experiment_id = params.get("experiment")
        if not experiment_id or not isinstance(experiment_id, str):
            raise ConfigError("missing 'experiment' parameter")
        try:
            seed = int(params.get("seed", DEFAULT_SEED))
        except (TypeError, ValueError) as exc:
            raise ConfigError(f"seed must be an integer: {exc}") from exc
        return experiment_id, seed

    def _handle_run(self) -> None:
        try:
            experiment_id, seed = self._run_params()
            served = self._service.serve(experiment_id, seed)
        except ConfigError as exc:
            self._error(400, str(exc))
        except ReproError as exc:
            self._error(500, str(exc))
        else:
            self._reply(200, _served_payload(served))

    # -- verbs ------------------------------------------------------------------

    def do_GET(self) -> None:  # noqa: N802 - http.server contract
        route = urlsplit(self.path).path.rstrip("/") or "/"
        if route == "/health":
            self._reply(200, {"status": "ok", "version": __version__})
        elif route == "/stats":
            self._reply(200, self._service.stats())
        elif route == "/status":
            stats = self._service.stats()
            self._reply(200, {
                "version": __version__,
                "experiments": list(EXPERIMENTS),
                "jobs": self._service.config.jobs,
                "cache_dir": self._service.config.cache_dir,
                "uptime_s": round(stats["uptime_s"], 3),
                "inflight": stats["inflight"],
            })
        elif route == "/run":
            self._handle_run()
        else:
            self._error(404, f"unknown route {route!r}")

    def do_POST(self) -> None:  # noqa: N802 - http.server contract
        route = urlsplit(self.path).path.rstrip("/")
        if route == "/run":
            self._handle_run()
        else:
            self._error(404, f"unknown route {route!r}")


class ClosingHTTPServer(ThreadingHTTPServer):
    """ThreadingHTTPServer whose ``server_close`` severs keep-alives.

    HTTP/1.1 keep-alive parks handler threads on idle established
    connections; closing only the listening socket would leave a
    "stopped" server still answering those clients.  Tracking accepted
    sockets lets ``server_close`` shut them down too, so a stopped
    shard looks *dead* to the router's keep-alive clients (prompt
    fail-over) instead of serving phantom replies.
    """

    daemon_threads = True
    request_queue_size = 128

    def __init__(self, *args: object, **kwargs: object) -> None:
        self._conn_lock = threading.Lock()
        self._open_conns: set[socket.socket] = set()  # gl: guarded-by=_conn_lock
        super().__init__(*args, **kwargs)

    def process_request(self, request, client_address) -> None:
        with self._conn_lock:
            self._open_conns.add(request)
        super().process_request(request, client_address)

    def shutdown_request(self, request) -> None:
        with self._conn_lock:
            self._open_conns.discard(request)
        super().shutdown_request(request)

    def handle_error(self, request, client_address) -> None:
        exc = sys.exc_info()[1]
        if isinstance(exc, (ConnectionError, TimeoutError)):
            return  # a severed or idle-timed-out keep-alive, not a bug
        super().handle_error(request, client_address)  # pragma: no cover

    def server_close(self) -> None:
        super().server_close()
        with self._conn_lock:
            conns = list(self._open_conns)
            self._open_conns.clear()
        for conn in conns:
            try:
                conn.shutdown(socket.SHUT_RDWR)
            except OSError:
                pass
            try:
                conn.close()
            except OSError:  # pragma: no cover - close is best-effort
                pass

    @property
    def port(self) -> int:
        """The bound TCP port (resolves an ephemeral-port bind)."""
        return int(self.server_address[1])


class ExperimentHTTPServer(ClosingHTTPServer):
    """ThreadingHTTPServer that owns an ExperimentService."""

    def __init__(self, address: tuple[str, int], service: ExperimentService,
                 verbose: bool = False,
                 handler: type[BaseHTTPRequestHandler] | None = None) -> None:
        super().__init__(address, handler or ServiceRequestHandler)
        self.service = service
        self.verbose = verbose


def make_server(host: str = "127.0.0.1", port: int = DEFAULT_PORT,
                service: ExperimentService | None = None,
                verbose: bool = False) -> ExperimentHTTPServer:
    """Bind (but do not start) the serving endpoint."""
    return ExperimentHTTPServer((host, port), service or ExperimentService(),
                                verbose=verbose)
