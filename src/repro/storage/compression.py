"""Timestep compression codecs (related-work extension).

Wang et al. [22] motivate application-driven compression for large
time-varying data; in this reproduction codecs plug into the
:class:`~repro.storage.writer.DataWriter` so a post-processing pipeline
can trade CPU cycles for dump bytes.  The data-volume ablation bench
shows when that trade wins: at the paper's 128 KiB dumps the write event
is barrier-dominated and compression buys nothing, while at
gigabyte-class dumps it cuts the transfer term directly.

Codecs implement ``encode``/``decode`` on raw bytes:

* :class:`ZlibCodec` — lossless DEFLATE at a configurable level;
* :class:`Float32Codec` — lossy float64 -> float32 demotion (exactly
  halves the payload; relative error ~1e-7, quantified per call);
* :class:`ChainCodec` — composition, e.g. float32-then-zlib.
"""

from __future__ import annotations

import zlib
from typing import Protocol

import numpy as np

from repro.errors import StorageError


class Codec(Protocol):
    """Byte-stream codec."""

    name: str
    lossless: bool

    def encode(self, raw: bytes) -> bytes: ...

    def decode(self, encoded: bytes) -> bytes: ...


class IdentityCodec:
    """No-op codec (the default)."""

    name = "identity"
    lossless = True

    def encode(self, raw: bytes) -> bytes:
        """Encode a raw byte payload."""
        return raw

    def decode(self, encoded: bytes) -> bytes:
        """Invert :meth:`encode`."""
        return encoded


class ZlibCodec:
    """Lossless DEFLATE."""

    lossless = True

    def __init__(self, level: int = 6) -> None:
        if not 1 <= level <= 9:
            raise StorageError(f"zlib level must be in [1, 9], got {level}")
        self.level = level
        self.name = f"zlib{level}"

    def encode(self, raw: bytes) -> bytes:
        """Encode a raw byte payload."""
        return zlib.compress(raw, self.level)

    def decode(self, encoded: bytes) -> bytes:
        """Invert :meth:`encode`."""
        try:
            return zlib.decompress(encoded)
        except zlib.error as exc:
            raise StorageError(f"zlib decode failed: {exc}") from exc


class Float32Codec:
    """Lossy demotion of float64 payloads to float32.

    The payload must be a whole number of float64 values.  Decoding
    promotes back to float64 (values carry ~7 significant digits).
    """

    name = "f32"
    lossless = False

    def encode(self, raw: bytes) -> bytes:
        """Encode a raw byte payload."""
        if len(raw) % 8:
            raise StorageError(
                f"float32 codec needs a float64 payload; {len(raw)} bytes"
            )
        return np.frombuffer(raw, dtype="<f8").astype("<f4").tobytes()

    def decode(self, encoded: bytes) -> bytes:
        """Invert :meth:`encode`."""
        if len(encoded) % 4:
            raise StorageError("corrupt float32 payload")
        return np.frombuffer(encoded, dtype="<f4").astype("<f8").tobytes()

    @staticmethod
    def max_relative_error(raw: bytes) -> float:
        """Worst-case relative error this codec introduces on ``raw``."""
        original = np.frombuffer(raw, dtype="<f8")
        demoted = original.astype("<f4").astype("<f8")
        denom = np.maximum(np.abs(original), 1e-300)
        return float(np.max(np.abs(original - demoted) / denom))


class ChainCodec:
    """Apply codecs left to right on encode, right to left on decode."""

    def __init__(self, *codecs: Codec) -> None:
        if not codecs:
            raise StorageError("chain needs at least one codec")
        self.codecs = codecs
        self.name = "+".join(c.name for c in codecs)
        self.lossless = all(c.lossless for c in codecs)

    def encode(self, raw: bytes) -> bytes:
        """Encode a raw byte payload."""
        for codec in self.codecs:
            raw = codec.encode(raw)
        return raw

    def decode(self, encoded: bytes) -> bytes:
        """Invert :meth:`encode`."""
        for codec in reversed(self.codecs):
            encoded = codec.decode(encoded)
        return encoded


#: Registry for the writer/reader format-flag mapping.
CODECS: dict[str, Codec] = {
    "identity": IdentityCodec(),
    "zlib": ZlibCodec(),
    "f32": Float32Codec(),
    "f32+zlib": ChainCodec(Float32Codec(), ZlibCodec()),
}


#: Stable codec ids for the container format's flags field.
CODEC_IDS: dict[str, int] = {
    "identity": 0,
    "zlib": 1,
    "f32": 2,
    "f32+zlib": 3,
}
_ID_TO_NAME = {v: k for k, v in CODEC_IDS.items()}


def codec_id(codec: Codec) -> int:
    """Format-flag id for a registered codec.

    Compression levels are a writer-side detail — any zlib level decodes
    identically — so names are normalized before lookup.
    """
    import re

    normalized = re.sub(r"zlib\d+", "zlib", codec.name)
    try:
        return CODEC_IDS[normalized]
    except KeyError:
        raise StorageError(
            f"codec {codec.name!r} has no registered container id"
        ) from None


def codec_from_id(flag: int) -> Codec:
    """Inverse of :func:`codec_id` for the reader."""
    try:
        return CODECS[_ID_TO_NAME[flag]]
    except KeyError:
        raise StorageError(f"unknown codec id {flag}") from None


def get_codec(name: str) -> Codec:
    """Look up a registered codec by name."""
    try:
        return CODECS[name]
    except KeyError:
        raise StorageError(
            f"unknown codec {name!r}; have {sorted(CODECS)}"
        ) from None


def compression_ratio(raw: bytes, codec: Codec) -> float:
    """raw/encoded size ratio (>1 means the codec shrank the payload)."""
    if not raw:
        raise StorageError("empty payload")
    return len(raw) / max(1, len(codec.encode(raw)))
