"""Software-directed data reorganization (Section V.D).

The paper's discussion argues that instead of abandoning post-processing,
one can keep its exploratory power and recover most of the energy by
reorganizing data so the analysis-time access pattern becomes sequential —
citing software-directed access scheduling [30] and integrated data
reorganization / disk mapping [31].  Two techniques, both implemented:

* :func:`schedule_accesses` — *access scheduling*: reorder a whole access
  plan by on-disk position before issuing it (a plan-wide elevator, beyond
  the block scheduler's batch window).  Free, but only legal when the
  consumer is order-insensitive.
* :func:`reorganize_file` — *data reorganization*: rewrite the file so its
  on-disk order matches the intended access order.  Costs one sequential
  read + one sequential write up front; every later pass is sequential.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import StorageError
from repro.machine.disk import DiskRequest
from repro.system.filesystem import FileSystem


def schedule_accesses(requests: list[DiskRequest]) -> list[DiskRequest]:
    """Order an access plan by device offset (plan-wide elevator)."""
    return sorted(requests, key=lambda r: r.offset)


@dataclass(frozen=True)
class ReorgReport:
    """Cost/benefit accounting of a data reorganization."""

    name: str
    reorganized_name: str
    nbytes: int
    rewrite_cpu_time: float
    rewrite_io_time: float
    extents_before: int
    extents_after: int

    @property
    def rewrite_elapsed(self) -> float:
        """Total wall time of the rewrite pass."""
        return self.rewrite_cpu_time + self.rewrite_io_time


def reorganize_file(
    fs: FileSystem,
    name: str,
    chunk_bytes: int,
    access_order: list[int],
    suffix: str = ".reorg",
) -> ReorgReport:
    """Rewrite ``name`` so chunks lie on disk in ``access_order``.

    The rewritten copy (``name + suffix``) is laid out contiguously in the
    order the analysis will visit it, so the visit becomes a sequential
    scan.  Returns the up-front cost and the layout improvement.

    ``access_order`` must be a permutation of the file's chunk indices.
    """
    size = fs.size(name)
    if chunk_bytes <= 0:
        raise StorageError("chunk_bytes must be positive")
    n_chunks = size // chunk_bytes
    if n_chunks * chunk_bytes != size:
        raise StorageError(
            f"file size {size} is not a whole number of {chunk_bytes}-byte chunks"
        )
    if sorted(access_order) != list(range(n_chunks)):
        raise StorageError(
            "access_order must be a permutation of the file's chunk indices"
        )
    extents_before = fs.fragmentation(name)
    new_name = name + suffix
    if fs.exists(new_name):
        raise StorageError(f"reorganized file {new_name!r} already exists")

    cpu = 0.0
    io_time = 0.0
    for chunk_index in access_order:
        data, r = fs.read(name, chunk_index * chunk_bytes, chunk_bytes)
        cpu += r.cpu_time
        io_time += r.io.busy_time
        w = fs.write(new_name, data)
        cpu += w.cpu_time
        io_time += w.io.busy_time
    s = fs.fsync(new_name)
    cpu += s.cpu_time
    io_time += s.io.busy_time
    return ReorgReport(
        name=name,
        reorganized_name=new_name,
        nbytes=size,
        rewrite_cpu_time=cpu,
        rewrite_io_time=io_time,
        extents_before=extents_before,
        extents_after=fs.fragmentation(new_name),
    )
