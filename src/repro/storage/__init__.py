"""Simulation-data storage formats and layout tooling.

* :mod:`repro.storage.format` — the chunked container each timestep dump
  uses (magic, header, per-chunk CRC index).
* :mod:`repro.storage.writer` / :mod:`repro.storage.reader` — timestep
  dump/load over the simulated filesystem, with the paper's
  sync-and-drop-caches discipline.
* :mod:`repro.storage.layout` — chunk-access-order policies (sequential,
  shuffled, strided) used to impose I/O patterns.
* :mod:`repro.storage.reorg` — software-directed data reorganization, the
  Section V.D technique that makes a post-processing pipeline's I/O
  near-sequential.
"""

from repro.storage.format import ChunkedContainer, decode_container, encode_container
from repro.storage.writer import DataWriter
from repro.storage.reader import DataReader
from repro.storage.layout import access_order
from repro.storage.reorg import ReorgReport, reorganize_file, schedule_accesses

__all__ = [
    "ChunkedContainer",
    "encode_container",
    "decode_container",
    "DataWriter",
    "DataReader",
    "access_order",
    "ReorgReport",
    "reorganize_file",
    "schedule_accesses",
]
