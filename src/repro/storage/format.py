"""Chunked timestep container format.

Layout (little-endian):

========  =====  =============================================
offset    size   field
========  =====  =============================================
0         4      magic ``b"RPRO"``
4         2      format version (currently 1)
6         2      flags (codec id; see repro.storage.compression)
8         4      nx (grid rows)
12        4      ny (grid cols)
16        4      n_chunks
20        4      timestep index
24        8      physical time (f64)
32        16*n   chunk index: (offset u64, nbytes u32, crc32 u32)
...              chunk payloads
========  =====  =============================================

Chunk offsets are relative to the start of the container.  Every chunk is
CRC-checked on decode — a reproduction of a storage study should notice
when its storage stack corrupts data.
"""

from __future__ import annotations

import struct
import zlib
from dataclasses import dataclass

from repro.errors import FileFormatError

MAGIC = b"RPRO"
VERSION = 1
_HEADER = struct.Struct("<4sHHIIIId")
_INDEX_ENTRY = struct.Struct("<QII")


@dataclass(frozen=True)
class ChunkedContainer:
    """Decoded container: metadata plus raw chunk payloads.

    ``flags`` carries the codec id the chunks were encoded with; the
    reader resolves it through :mod:`repro.storage.compression`.
    ``chunks`` holds CRC-validated views into the decoded blob (zero
    copy); ``payload_view`` spans all of them when they are laid out
    contiguously, letting whole-grid readers skip the concatenation.
    """

    nx: int
    ny: int
    timestep: int
    physical_time: float
    chunks: tuple[bytes | memoryview, ...]
    flags: int = 0
    payload_view: memoryview | None = None

    @property
    def payload(self) -> bytes:
        """All chunk payloads concatenated."""
        if self.payload_view is not None:
            return bytes(self.payload_view)
        return b"".join(self.chunks)

    @property
    def nbytes(self) -> int:
        """Size of the stored data in bytes."""
        return sum(len(c) for c in self.chunks)


def encode_container(
    chunks: list[bytes] | tuple[bytes, ...],
    nx: int,
    ny: int,
    timestep: int = 0,
    physical_time: float = 0.0,
    flags: int = 0,
) -> bytes:
    """Serialize chunks into the container format."""
    if not chunks:
        raise FileFormatError("container needs at least one chunk")
    if nx <= 0 or ny <= 0:
        raise FileFormatError("grid dimensions must be positive")
    if timestep < 0:
        raise FileFormatError("timestep must be non-negative")
    # u16 header-field width, unrelated to the RAPL energy quantum.
    if not 0 <= flags < (1 << 16):  # greenlint: ignore[GL2]
        raise FileFormatError(f"flags out of u16 range: {flags}")
    header = _HEADER.pack(MAGIC, VERSION, flags, nx, ny, len(chunks),
                          timestep, physical_time)
    index_size = _INDEX_ENTRY.size * len(chunks)
    index = bytearray(index_size)
    offset = len(header) + index_size
    pos = 0
    for chunk in chunks:
        if not chunk:
            raise FileFormatError("empty chunk")
        _INDEX_ENTRY.pack_into(index, pos, offset, len(chunk),
                               zlib.crc32(chunk) & 0xFFFFFFFF)
        pos += _INDEX_ENTRY.size
        offset += len(chunk)
    return b"".join((header, bytes(index), *chunks))


def decode_container(blob: bytes) -> ChunkedContainer:
    """Parse and CRC-validate a container."""
    if len(blob) < _HEADER.size:
        raise FileFormatError("container truncated before header")
    magic, version, flags, nx, ny, n_chunks, timestep, phys_t = _HEADER.unpack_from(blob)
    if magic != MAGIC:
        raise FileFormatError(f"bad magic {magic!r}")
    if version != VERSION:
        raise FileFormatError(f"unsupported version {version}")
    index_end = _HEADER.size + _INDEX_ENTRY.size * n_chunks
    if len(blob) < index_end:
        raise FileFormatError("container truncated inside chunk index")
    view = memoryview(blob)
    chunks = []
    contiguous = True
    first_offset = prev_end = None
    for i in range(n_chunks):
        offset, nbytes, crc = _INDEX_ENTRY.unpack_from(
            blob, _HEADER.size + i * _INDEX_ENTRY.size
        )
        chunk = view[offset : offset + nbytes]
        if len(chunk) != nbytes:
            raise FileFormatError(f"chunk {i} truncated")
        if zlib.crc32(chunk) & 0xFFFFFFFF != crc:
            raise FileFormatError(f"chunk {i} failed CRC validation")
        chunks.append(chunk)
        if first_offset is None:
            first_offset = offset
        elif offset != prev_end:
            contiguous = False
        prev_end = offset + nbytes
    payload_view = (view[first_offset:prev_end]
                    if contiguous and first_offset is not None else None)
    return ChunkedContainer(nx=nx, ny=ny, timestep=timestep,
                            physical_time=phys_t, chunks=tuple(chunks),
                            flags=flags, payload_view=payload_view)


def chunk_extent(blob_header: bytes, chunk_index: int) -> tuple[int, int]:
    """(offset, nbytes) of one chunk, reading only header + index bytes.

    Lets a reader fetch a single chunk without pulling the whole container
    through the storage stack (the selective-read path of the
    post-processing pipeline's exploratory analysis).
    """
    if len(blob_header) < _HEADER.size:
        raise FileFormatError("container truncated before header")
    magic, version, _f, _nx, _ny, n_chunks, _ts, _pt = _HEADER.unpack_from(blob_header)
    if magic != MAGIC or version != VERSION:
        raise FileFormatError("bad container header")
    if not 0 <= chunk_index < n_chunks:
        raise FileFormatError(f"chunk index {chunk_index} out of range")
    entry_pos = _HEADER.size + chunk_index * _INDEX_ENTRY.size
    if len(blob_header) < entry_pos + _INDEX_ENTRY.size:
        raise FileFormatError("container truncated inside chunk index")
    offset, nbytes, _crc = _INDEX_ENTRY.unpack_from(blob_header, entry_pos)
    return offset, nbytes


def header_size(n_chunks: int) -> int:
    """Bytes of header + index for a container of ``n_chunks``."""
    return _HEADER.size + _INDEX_ENTRY.size * n_chunks
