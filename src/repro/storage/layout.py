"""Access-order policies over chunk sequences.

The fio study (Table III) and the what-if analysis (Section V.D) hinge on
*access pattern*: the same bytes cost wildly different time and energy
depending on the order they are touched.  This module generates the
canonical orders used by the workloads:

* ``sequential`` — ascending, the best case;
* ``reverse`` — descending (still mechanical-friendly on a per-step basis);
* ``strided`` — every k-th then wrap, a classic array-of-structs access;
* ``shuffled`` — uniform random permutation, the worst case;
* ``zipf`` — skewed popularity with repeats, modeling hot-spot analysis
  reads (length matches the input, but elements repeat).
"""

from __future__ import annotations

import numpy as np

from repro.errors import StorageError
from repro.rng import RngRegistry

POLICIES = ("sequential", "reverse", "strided", "shuffled", "zipf")


def access_order_array(
    n: int,
    policy: str = "sequential",
    stride: int = 8,
    zipf_s: float = 1.3,
    rng: RngRegistry | None = None,
) -> np.ndarray:
    """The chunk-index visit order as an int64 array (batched-dispatch form).

    Same orders as :func:`access_order`; the array form feeds straight
    into offset arithmetic without a list round-trip.
    """
    if n <= 0:
        raise StorageError("n must be positive")
    if policy not in POLICIES:
        raise StorageError(f"unknown access policy {policy!r}; have {POLICIES}")
    registry = rng or RngRegistry()
    if policy == "sequential":
        return np.arange(n, dtype=np.int64)
    if policy == "reverse":
        return np.arange(n - 1, -1, -1, dtype=np.int64)
    if policy == "strided":
        if stride <= 0:
            raise StorageError("stride must be positive")
        return np.concatenate([
            np.arange(start, n, stride, dtype=np.int64)
            for start in range(min(stride, n))
        ])
    if policy == "shuffled":
        gen = registry.get("layout-shuffle")
        perm = np.arange(n, dtype=np.int64)
        gen.shuffle(perm)
        return perm
    # zipf: skewed repeats over the chunk space.
    gen = registry.get("layout-zipf")
    draws = gen.zipf(zipf_s, size=n)
    return ((draws - 1) % n).astype(np.int64)


def access_order(
    n: int,
    policy: str = "sequential",
    stride: int = 8,
    zipf_s: float = 1.3,
    rng: RngRegistry | None = None,
) -> list[int]:
    """Return the chunk-index visit order for ``n`` chunks under ``policy``."""
    return access_order_array(n, policy, stride, zipf_s, rng).tolist()


def seek_distance(order: list[int]) -> int:
    """Total absolute index distance between consecutive accesses.

    A cheap proxy for mechanical cost: sequential order scores n-1,
    shuffled order scores ~n^2/3.
    """
    if not order:
        return 0
    return int(np.abs(np.diff(np.asarray(order))).sum())
