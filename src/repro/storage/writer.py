"""Timestep dump writer.

Implements the post-processing pipeline's output discipline:

* one container file per dumped timestep (``ts0007.dat``),
* chunked at the configured chunk size (the paper's 128 KiB),
* optional ``sync`` + ``drop_caches`` after each dump — the paper's
  methodology for making writes actually reach the disk.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import StorageError
from repro.fingerprint import ContentMemo, field_fingerprint
from repro.sim.grid import Grid2D
from repro.storage.compression import Codec, IdentityCodec, codec_id
from repro.storage.format import encode_container
from repro.system.blockdev import IoStats
from repro.system.filesystem import FileSystem, FsResult
from repro.units import KiB

#: (field fingerprint, container metadata) -> encoded container blob.
#: Chunking + codec + container assembly is a pure function of the field
#: contents and the dump parameters, and repeat-heavy workloads (paired
#: pipeline runs, repeated experiments, app sweeps over science-cache
#: snapshots) dump identical fields over and over; the memo hands back
#: the identical blob without re-scanning the field.
_ENCODE_MEMO = ContentMemo()


@dataclass
class WriteReport:
    """Accounting for one timestep dump."""

    name: str
    nbytes: int
    cpu_time: float
    io: IoStats

    @property
    def elapsed(self) -> float:
        """Total elapsed seconds (CPU + device time)."""
        return self.cpu_time + self.io.busy_time


class DataWriter:
    """Writes simulation timesteps to the simulated filesystem."""

    def __init__(
        self,
        fs: FileSystem,
        prefix: str = "ts",
        chunk_bytes: int = 128 * KiB,
        sync_each: bool = True,
        drop_caches_each: bool = True,
        codec: Codec | None = None,
    ) -> None:
        if chunk_bytes <= 0:
            raise StorageError("chunk_bytes must be positive")
        self.fs = fs
        self.prefix = prefix
        self.chunk_bytes = chunk_bytes
        self.sync_each = sync_each
        self.drop_caches_each = drop_caches_each
        self.codec = codec or IdentityCodec()
        self.timesteps_written: list[str] = []

    def filename(self, timestep: int) -> str:
        """Container file name for a timestep index."""
        return f"{self.prefix}{timestep:04d}.dat"

    def write_timestep(self, grid: Grid2D, timestep: int,
                       physical_time: float = 0.0) -> WriteReport:
        """Dump one timestep; returns timing/IO accounting."""
        if timestep < 0:
            raise StorageError("timestep must be non-negative")
        name = self.filename(timestep)
        if self.fs.exists(name):
            raise StorageError(f"timestep file {name!r} already exists")
        fingerprint = field_fingerprint(grid.data)
        memo_key = None
        blob = None
        if fingerprint is not None:
            memo_key = (fingerprint, timestep, physical_time,
                        self.chunk_bytes, codec_id(self.codec))
            blob = _ENCODE_MEMO.get(memo_key)  # greenlint: ignore[GL18]  (keyed on the grid's content fingerprint + codec config: value-deterministic)
        if blob is None:
            chunks = [self.codec.encode(c)
                      for c in grid.chunks(self.chunk_bytes)]
            blob = encode_container(
                chunks, grid.nx, grid.ny,
                timestep=timestep, physical_time=physical_time,
                flags=codec_id(self.codec),
            )
            if memo_key is not None:
                _ENCODE_MEMO.put(memo_key, blob, len(blob))
        result: FsResult = self.fs.write(name, blob)
        if self.sync_each:
            r = self.fs.fsync(name)
            result.cpu_time += r.cpu_time
            result.io = result.io.merge(r.io)
        if self.drop_caches_each:
            r = self.fs.drop_caches()
            result.cpu_time += r.cpu_time
            result.io = result.io.merge(r.io)
        self.timesteps_written.append(name)
        return WriteReport(name=name, nbytes=len(blob),
                           cpu_time=result.cpu_time, io=result.io)

    @property
    def total_bytes(self) -> int:
        """Total bytes of all timestep files written."""
        return sum(self.fs.size(name) for name in self.timesteps_written)
