"""In-situ data sampling (related-work technique, Woodring et al. [21]).

Section V.C of the paper names *data sampling* as the technique matching
the dynamic (data-movement) component of the energy bill: store a reduced
representation in situ, keep a degraded-but-useful exploratory capability,
move fewer bytes.

This module implements grid decimation with bilinear reconstruction and
quantifies exactly what the paper warns about ("may result in loss of
useful information"): every sampling pass reports its reconstruction
error alongside its byte savings, so the energy/quality trade-off is a
measured pair, not a hand wave.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import StorageError


def retained_indices(n: int, factor: int) -> np.ndarray:
    """Indices a decimation by ``factor`` keeps along one axis.

    Every ``factor``-th sample plus the final one (so reconstruction can
    anchor the domain boundary).
    """
    if n < 2:
        raise StorageError(f"axis too short to sample: {n}")
    if factor < 1:
        raise StorageError(f"factor must be >= 1, got {factor}")
    return np.unique(np.append(np.arange(0, n, factor), n - 1))


def decimate(data: np.ndarray, factor: int) -> np.ndarray:
    """Keep every ``factor``-th sample in each dimension."""
    if data.ndim != 2:
        raise StorageError(f"expected 2-D field, got {data.ndim}-D")
    if factor < 1:
        raise StorageError(f"factor must be >= 1, got {factor}")
    if factor == 1:
        return data.copy()
    rows = retained_indices(data.shape[0], factor)
    cols = retained_indices(data.shape[1], factor)
    return data[np.ix_(rows, cols)]


def reconstruct_bilinear(sampled: np.ndarray, shape: tuple[int, int],
                         factor: int) -> np.ndarray:
    """Bilinear upsampling of a ``factor``-decimated field to ``shape``."""
    if sampled.ndim != 2:
        raise StorageError("expected 2-D sampled field")
    nr, nc = shape
    if nr < sampled.shape[0] or nc < sampled.shape[1]:
        raise StorageError("target shape smaller than the sampled field")
    row_pos = retained_indices(nr, factor).astype(float)
    col_pos = retained_indices(nc, factor).astype(float)
    if len(row_pos) != sampled.shape[0] or len(col_pos) != sampled.shape[1]:
        raise StorageError(
            f"sampled shape {sampled.shape} inconsistent with target "
            f"{shape} at factor {factor}"
        )
    # Interpolate along columns, then rows (separable bilinear).
    fine_cols = np.empty((sampled.shape[0], nc))
    target_cols = np.arange(nc, dtype=float)
    for i in range(sampled.shape[0]):
        fine_cols[i] = np.interp(target_cols, col_pos, sampled[i])
    out = np.empty((nr, nc))
    target_rows = np.arange(nr, dtype=float)
    for j in range(nc):
        out[:, j] = np.interp(target_rows, row_pos, fine_cols[:, j])
    return out


@dataclass(frozen=True)
class SamplingReport:
    """Byte savings vs information loss of one sampling pass."""

    factor: int
    original_bytes: int
    sampled_bytes: int
    rmse: float
    max_abs_error: float
    data_range: float

    @property
    def byte_fraction(self) -> float:
        """Sampled bytes as a fraction of the original."""
        return self.sampled_bytes / self.original_bytes

    @property
    def nrmse(self) -> float:
        """RMSE normalized by the field's dynamic range."""
        return self.rmse / self.data_range if self.data_range > 0 else 0.0


def sample_field(data: np.ndarray, factor: int) -> tuple[np.ndarray, SamplingReport]:
    """Decimate ``data`` and report the reconstruction error."""
    sampled = decimate(data, factor)
    reconstructed = reconstruct_bilinear(sampled, data.shape, factor)
    err = data - reconstructed
    lo, hi = float(data.min()), float(data.max())
    report = SamplingReport(
        factor=factor,
        original_bytes=data.nbytes,
        sampled_bytes=sampled.nbytes,
        rmse=float(np.sqrt(np.mean(err ** 2))),
        max_abs_error=float(np.max(np.abs(err))),
        data_range=hi - lo,
    )
    return sampled, report
