"""Timestep dump reader — the post-processing pipeline's input side.

Reads the container files a :class:`~repro.storage.writer.DataWriter`
produced, CRC-validating every chunk, and reconstructs the
:class:`~repro.sim.grid.Grid2D`.  Supports whole-timestep reads (the
paper's visualization pass) and selective single-chunk reads (exploratory
analysis over a subset of the domain).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import StorageError
from repro.fingerprint import ContentMemo, blob_fingerprint
from repro.sim.grid import Grid2D
from repro.storage.compression import codec_from_id
from repro.storage.format import (
    ChunkedContainer,
    chunk_extent,
    decode_container,
    header_size,
)
from repro.system.blockdev import IoStats
from repro.system.filesystem import FileSystem

#: blob fingerprint -> (timestep, read-only grid array).  Decode + CRC
#: validation + grid reassembly is a pure function of the container
#: bytes; repeated reads of identical containers (paired runs, repeated
#: experiments) serve the already-validated array.  Serving the *same*
#: array object also lets downstream content caches (frame rendering)
#: key it by identity instead of re-hashing the field.
_GRID_MEMO = ContentMemo()


@dataclass
class ReadReport:
    """Accounting for one timestep load."""

    name: str
    nbytes: int
    cpu_time: float
    io: IoStats

    @property
    def elapsed(self) -> float:
        """Total elapsed seconds (CPU + device time)."""
        return self.cpu_time + self.io.busy_time


class DataReader:
    """Reads simulation timesteps back from the simulated filesystem."""

    def __init__(self, fs: FileSystem, prefix: str = "ts",
                 drop_caches_first: bool = True) -> None:
        self.fs = fs
        self.prefix = prefix
        self.drop_caches_first = drop_caches_first

    def filename(self, timestep: int) -> str:
        """Container file name for a timestep index."""
        return f"{self.prefix}{timestep:04d}.dat"

    def available_timesteps(self) -> list[int]:
        """Timestep indices present on the filesystem, sorted."""
        out = []
        for name in self.fs.files:
            if name.startswith(self.prefix) and name.endswith(".dat"):
                digits = name[len(self.prefix) : -len(".dat")]
                if digits.isdigit():
                    out.append(int(digits))
        return sorted(out)

    def _load_blob(self, name: str) -> tuple[bytes, float, IoStats]:
        """Pull a whole container file through the storage stack."""
        cpu = 0.0
        io = IoStats()
        if self.drop_caches_first:
            r = self.fs.drop_caches()
            cpu += r.cpu_time
            io = io.merge(r.io)
        blob, result = self.fs.read(name)
        cpu += result.cpu_time
        io = io.merge(result.io)
        return blob, cpu, io

    def read_timestep(self, timestep: int) -> tuple[ChunkedContainer, ReadReport]:
        """Load and validate a whole timestep container."""
        name = self.filename(timestep)
        blob, cpu, io = self._load_blob(name)
        container = decode_container(blob)
        if container.timestep != timestep:
            raise StorageError(
                f"file {name!r} claims timestep {container.timestep}"
            )
        return container, ReadReport(name=name, nbytes=len(blob),
                                     cpu_time=cpu, io=io)

    def read_grid(self, timestep: int) -> tuple[Grid2D, ReadReport]:
        """Load a timestep, decode its codec, reassemble the grid."""
        name = self.filename(timestep)
        blob, cpu, io = self._load_blob(name)
        report = ReadReport(name=name, nbytes=len(blob), cpu_time=cpu, io=io)
        memo_key = blob_fingerprint(blob)
        hit = _GRID_MEMO.get(memo_key)  # greenlint: ignore[GL18]  (keyed on the blob's content fingerprint: value-deterministic)
        if hit is not None:
            stored_timestep, data = hit
            if stored_timestep != timestep:
                raise StorageError(
                    f"file {name!r} claims timestep {stored_timestep}"
                )
            return Grid2D.from_array(data), report
        container = decode_container(blob)
        if container.timestep != timestep:
            raise StorageError(
                f"file {name!r} claims timestep {container.timestep}"
            )
        codec = codec_from_id(container.flags)
        if container.payload_view is not None and codec.name == "identity":
            # Uncompressed chunks lie contiguously in the blob: hand the
            # spanning view straight to the grid (one copy, no join).
            payload = container.payload_view
        else:
            payload = b"".join(codec.decode(c) for c in container.chunks)
        # copy=False: the grid wraps the payload buffer read-only — read
        # grids are rendered and checksummed, never stepped.
        grid = Grid2D.from_bytes(payload, container.nx, container.ny,
                                 copy=False)
        _GRID_MEMO.put(memo_key, (container.timestep, grid.data),
                       grid.data.nbytes)
        return grid, report

    def read_chunk(self, timestep: int, chunk_index: int,
                   n_chunks_hint: int | None = None) -> tuple[bytes, ReadReport]:
        """Selective read: header + index + exactly one chunk.

        ``n_chunks_hint`` bounds the header read; when None, a generous
        index prefix is fetched.
        """
        name = self.filename(timestep)
        cpu = 0.0
        io = IoStats()
        if self.drop_caches_first:
            r = self.fs.drop_caches()
            cpu += r.cpu_time
            io = io.merge(r.io)
        head_bytes = header_size(n_chunks_hint if n_chunks_hint is not None else 64)
        head_bytes = min(head_bytes, self.fs.size(name))
        head, r1 = self.fs.read(name, 0, head_bytes)
        offset, nbytes = chunk_extent(head, chunk_index)
        chunk, r2 = self.fs.read(name, offset, nbytes)
        cpu += r1.cpu_time + r2.cpu_time
        io = io.merge(r1.io).merge(r2.io)
        return chunk, ReadReport(name=name, nbytes=nbytes, cpu_time=cpu, io=io)
