"""Content fingerprints and bounded memos for repeat-heavy hot paths.

Several layers of the reproduction recompute pure functions of bulk
content: the renderer rasterizes the same field both pipelines of a
comparison observed, the timestep writer re-encodes the same snapshot a
repeated experiment dumps again, the reader re-validates a container it
decoded moments ago.  This module centralizes the two ingredients those
caches share:

* **fingerprints** — cheap double-hash content keys (a full crc32 plus
  an adler32 over a prefix, alongside shape/length metadata), so a
  collision must beat two different checksums *and* the metadata at
  once without paying for two full scans;
* **:class:`ContentMemo`** — a FIFO-bounded, thread-tolerant store
  bounded by entry count and approximate bytes.  Memos only ever
  accelerate: a miss recomputes the pure function, so eviction policy
  cannot change a produced number.

Immutable arrays (science-cache snapshots, zero-copy read-back grids)
additionally pin their fingerprint under ``id(array)``, making repeat
fingerprinting O(1) instead of a full scan.
"""

from __future__ import annotations

import threading
import zlib
from typing import Any

import numpy as np

from repro.units import KiB, MiB

#: How much of the content the secondary (adler32) hash covers.
_PREFIX_BYTES = 64 * KiB

#: id -> (array ref, fingerprint) for *immutable* arrays; the stored
#: reference keeps the id from being recycled.
_FP_MEMO: dict[int, tuple[np.ndarray, tuple]] = {}
_FP_MEMO_MAX_ENTRIES = 512


def field_fingerprint(data: np.ndarray) -> tuple | None:
    """Content key of a 2-D field, or None when hashing isn't cheap."""
    if not isinstance(data, np.ndarray) or not data.flags.c_contiguous:
        return None
    immutable = not data.flags.writeable
    if immutable:
        hit = _FP_MEMO.get(id(data))  # greenlint: ignore[GL18]  (content-keyed memo: hits are identity-checked, value-deterministic)
        if hit is not None and hit[0] is data:
            return hit[1]
    buf = data.data.cast("B")
    fingerprint = (data.shape, data.dtype.str,
                   zlib.crc32(buf), zlib.adler32(buf[:_PREFIX_BYTES]))
    if immutable:
        if len(_FP_MEMO) >= _FP_MEMO_MAX_ENTRIES:
            try:
                _FP_MEMO.pop(next(iter(_FP_MEMO)))
            except (KeyError, RuntimeError, StopIteration):
                pass  # concurrent evictor got there first
        _FP_MEMO[id(data)] = (data, fingerprint)
    return fingerprint


#: id -> (blob ref, fingerprint) for ``bytes`` blobs.  Safe for the same
#: reason as ``_FP_MEMO``: ``bytes`` is immutable and the stored reference
#: keeps the id from being recycled.  The writer's encode memo hands the
#: *same* blob object to every repeat store, and the in-memory filesystem
#: returns the stored body object on full-range reads, so repeat decode
#: paths hit this in O(1) instead of re-scanning multi-MiB blobs.
_BLOB_MEMO: dict[int, tuple[bytes, tuple]] = {}
_BLOB_MEMO_MAX_ENTRIES = 512


def blob_fingerprint(blob: bytes | memoryview) -> tuple:
    """Content key of a byte blob (same double-hash scheme as fields)."""
    if type(blob) is bytes:
        hit = _BLOB_MEMO.get(id(blob))  # greenlint: ignore[GL18]  (content-keyed memo: hits are identity-checked, value-deterministic)
        if hit is not None and hit[0] is blob:
            return hit[1]
    view = memoryview(blob)
    fingerprint = (len(view), zlib.crc32(view),
                   zlib.adler32(view[:_PREFIX_BYTES]))
    if type(blob) is bytes:
        if len(_BLOB_MEMO) >= _BLOB_MEMO_MAX_ENTRIES:
            try:
                _BLOB_MEMO.pop(next(iter(_BLOB_MEMO)))
            except (KeyError, RuntimeError, StopIteration):
                pass  # concurrent evictor got there first
        _BLOB_MEMO[id(blob)] = (blob, fingerprint)
    return fingerprint


class ContentMemo:
    """FIFO-bounded memo for content-keyed pure-function results.

    Bounded by entry count and approximate bytes; inserting past either
    bound drops oldest entries first.  All operations take a lock, so
    serving-layer threads can share one memo; the worst concurrent
    outcome is a duplicated recompute, never a wrong value.
    """

    def __init__(self, max_entries: int = 256,
                 max_bytes: int = 256 * MiB) -> None:
        self.max_entries = max_entries
        self.max_bytes = max_bytes
        self._lock = threading.Lock()
        self._entries: dict[Any, tuple[Any, int]] = {}  # gl: guarded-by=_lock
        self._bytes = 0  # gl: guarded-by=_lock

    def get(self, key: Any) -> Any | None:
        """The memoized value, or None."""
        with self._lock:
            hit = self._entries.get(key)
            return None if hit is None else hit[0]

    def put(self, key: Any, value: Any, nbytes: int) -> None:
        """Store ``value`` charged at ``nbytes`` (oversized values skip)."""
        if nbytes > self.max_bytes:
            return
        with self._lock:
            old = self._entries.pop(key, None)
            if old is not None:
                self._bytes -= old[1]
            self._entries[key] = (value, nbytes)
            self._bytes += nbytes
            while (len(self._entries) > self.max_entries
                   or self._bytes > self.max_bytes):
                oldest = next(iter(self._entries))
                self._bytes -= self._entries.pop(oldest)[1]

    def clear(self) -> None:
        """Drop every entry (mainly for tests)."""
        with self._lock:
            self._entries.clear()
            self._bytes = 0

    def __len__(self) -> int:
        return len(self._entries)
