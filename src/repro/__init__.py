"""repro — a reproduction of *On the Greenness of In-Situ and
Post-Processing Visualization Pipelines* (Adhinarayanan et al.,
IPDPSW 2015).

The paper is an empirical power/energy study; this library rebuilds its
testbed as a calibrated full-system simulation and its experiment as
runnable pipelines:

* :mod:`repro.machine` — the dual-socket Sandy Bridge node of Table I
  (CPU / DRAM / 7200 rpm HDD power and timing models, plus SSD / NVRAM /
  RAID / cluster extensions);
* :mod:`repro.power` — emulated RAPL counters and Wattsup wall meter;
* :mod:`repro.system` — page cache, filesystem, block layer, I/O
  schedulers;
* :mod:`repro.sim` — the proxy 2-D heat-transfer application;
* :mod:`repro.viz` — a real software renderer (colormaps, contours, PNG);
* :mod:`repro.pipelines` — post-processing, in-situ, and in-transit
  pipelines;
* :mod:`repro.workloads` — the fio-equivalent disk benchmark and the
  paper's three case studies;
* :mod:`repro.analysis` — greenness metrics, comparisons, the savings
  breakdown, and the Section V.D what-if;
* :mod:`repro.runtime` — the future-work disk power model and
  optimization advisor;
* :mod:`repro.experiments` — one callable per paper figure/table.

Quickstart::

    from repro import run_case_study

    outcome = run_case_study(1)
    print(f"in-situ saves {outcome.energy_savings_fraction:.0%}")
"""

from repro.version import __version__
from repro.errors import ReproError
from repro.config import ExperimentConfig
from repro.machine import Node, paper_testbed
from repro.pipelines import (
    InSituPipeline,
    InTransitPipeline,
    PipelineConfig,
    PipelineRunner,
    PostProcessingPipeline,
    RunResult,
)
from repro.power import MeterRig, PowerProfile
from repro.analysis import GreennessReport, compare_cases
from repro.workloads import FioRunner, run_all_cases, run_case_study
from repro.experiments import CASE_STUDIES, Lab, run_experiment

__all__ = [
    "__version__",
    "ReproError",
    "ExperimentConfig",
    "Node",
    "paper_testbed",
    "PipelineConfig",
    "PipelineRunner",
    "PostProcessingPipeline",
    "InSituPipeline",
    "InTransitPipeline",
    "RunResult",
    "MeterRig",
    "PowerProfile",
    "GreennessReport",
    "compare_cases",
    "FioRunner",
    "run_case_study",
    "run_all_cases",
    "CASE_STUDIES",
    "Lab",
    "run_experiment",
]
