"""Block-layer I/O schedulers.

A scheduler reorders a batch of outstanding requests before dispatch.  The
difference between :class:`NoopScheduler` (submit order) and
:class:`ScanScheduler` (LBA elevator) on a mechanical disk is the entire
effect the paper's Section V.D attributes to "software-directed data access
scheduling" [30]: a random stream becomes a near-sequential one, collapsing
seek time and seek energy.

Schedulers are pure policies: ``order(requests, head_pos)`` returns a new
ordering and must neither drop nor duplicate requests (property-tested).
"""

from __future__ import annotations

from typing import Protocol, Sequence

from repro.errors import ConfigError
from repro.machine.disk import DiskRequest


class IoScheduler(Protocol):
    """Request-ordering policy."""

    name: str

    def order(self, requests: Sequence[DiskRequest], head_pos: int) -> list[DiskRequest]:
        """Return dispatch order for ``requests`` given the head position."""
        ...


class NoopScheduler:
    """Dispatch in submission order (Linux ``noop``)."""

    name = "noop"

    def order(self, requests: Sequence[DiskRequest], head_pos: int) -> list[DiskRequest]:
        """Return the dispatch order for a batch of requests."""
        return list(requests)


class ScanScheduler:
    """One-way elevator (SCAN / C-LOOK flavour).

    Requests at or beyond the head position are serviced in ascending LBA
    order first; the queue then wraps to the lowest remaining LBA and
    ascends again.  This is the classic seek-minimizing order for a batch.
    """

    name = "scan"

    def order(self, requests: Sequence[DiskRequest], head_pos: int) -> list[DiskRequest]:
        """Return the dispatch order for a batch of requests."""
        ahead = sorted(
            (r for r in requests if r.offset >= head_pos), key=lambda r: r.offset
        )
        behind = sorted(
            (r for r in requests if r.offset < head_pos), key=lambda r: r.offset
        )
        return ahead + behind


class DeadlineScheduler:
    """Elevator with starvation protection (Linux ``deadline`` flavour).

    Requests are serviced in SCAN order, but any request that has waited
    more than ``batch_limit`` positions past its arrival order is promoted
    to the front of the remaining queue.  With a generous limit this
    degenerates to SCAN; with limit 0 it degenerates to FIFO.
    """

    name = "deadline"

    def __init__(self, batch_limit: int = 16) -> None:
        if batch_limit < 0:
            raise ConfigError("batch_limit must be non-negative")
        self.batch_limit = batch_limit

    def order(self, requests: Sequence[DiskRequest], head_pos: int) -> list[DiskRequest]:
        """Return the dispatch order for a batch of requests."""
        arrival = {id(r): i for i, r in enumerate(requests)}
        pending = ScanScheduler().order(requests, head_pos)
        out: list[DiskRequest] = []
        while pending:
            # How far has the oldest pending request been pushed back?
            oldest = min(pending, key=lambda r: arrival[id(r)])
            lag = len(out) - arrival[id(oldest)]
            if lag > self.batch_limit:
                nxt = oldest
            else:
                nxt = pending[0]
            pending.remove(nxt)
            out.append(nxt)
        return out
