"""Striped parallel filesystem model (future-work item 4).

"Evaluation on multi-node systems running parallel file systems to
understand the impact of file system on energy consumption."  This
module models a Lustre-like parallel filesystem:

* ``n_osts`` object storage targets, each backed by its own disk model
  and block queue;
* files striped round-robin over a configurable ``stripe_count`` of OSTs
  in ``stripe_bytes`` units;
* a metadata server charging a per-operation cost (open/create/close);
* client-visible time for a transfer = metadata + the slowest involved
  OST (they service their stripe shares concurrently);
* energy accounting = the *sum* of all OST activity (every spindle the
  stripe touches burns power) — which is exactly the energy-vs-time
  trade-off stripes create: wider stripes cut wall time but spin up more
  hardware per byte.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import StorageError
from repro.machine.disk import DiskRequest, HddModel, OpKind
from repro.machine.specs import DiskSpec
from repro.system.blockdev import BlockQueue, IoStats
from repro.units import MiB


@dataclass
class PfsResult:
    """Client-visible outcome of one PFS operation."""

    elapsed_s: float             # what the client waits
    io: IoStats                  # aggregate over every OST touched
    osts_touched: int = 0
    metadata_ops: int = 0


@dataclass
class _PfsFile:
    name: str
    size: int = 0
    stripe_count: int = 1
    #: Per-OST next free offset is tracked by the filesystem allocator.


class ParallelFileSystem:
    """A striped object-storage filesystem over N OSTs."""

    def __init__(
        self,
        n_osts: int = 4,
        stripe_count: int | None = None,
        stripe_bytes: int = 1 * MiB,
        metadata_op_s: float = 0.5e-3,
        disk_spec: DiskSpec | None = None,
    ) -> None:
        if n_osts < 1:
            raise StorageError("need at least one OST")
        if stripe_bytes <= 0:
            raise StorageError("stripe size must be positive")
        if metadata_op_s < 0:
            raise StorageError("metadata cost cannot be negative")
        self.n_osts = n_osts
        self.default_stripe_count = (
            n_osts if stripe_count is None else stripe_count
        )
        if not 1 <= self.default_stripe_count <= n_osts:
            raise StorageError(
                f"stripe_count must be in [1, {n_osts}]"
            )
        self.stripe_bytes = stripe_bytes
        self.metadata_op_s = metadata_op_s
        spec = disk_spec or DiskSpec()
        self.osts = [BlockQueue(HddModel(spec)) for _ in range(n_osts)]
        self._alloc = [0] * n_osts  # next free byte per OST
        self._files: dict[str, _PfsFile] = {}
        self._contents: dict[str, bytearray] = {}
        self._next_ost = 0  # round-robin starting OST for new files

    # -- namespace ---------------------------------------------------------------

    @property
    def files(self) -> tuple[str, ...]:
        """Names of all files, in creation order."""
        return tuple(self._files)

    def exists(self, name: str) -> bool:
        """True if a file of that name exists."""
        return name in self._files

    def size(self, name: str) -> int:
        """Size of the named file in bytes."""
        try:
            return self._files[name].size
        except KeyError:
            raise StorageError(f"no such file {name!r}") from None

    # -- data path ----------------------------------------------------------------

    def _stripes(self, f: _PfsFile, offset: int, nbytes: int):
        """Yield (ost index, nbytes) shares for a file range."""
        shares: dict[int, int] = {}
        pos = offset
        remaining = nbytes
        while remaining > 0:
            stripe_index = pos // self.stripe_bytes
            within = pos % self.stripe_bytes
            take = min(self.stripe_bytes - within, remaining)
            ost = stripe_index % f.stripe_count
            shares[ost] = shares.get(ost, 0) + take
            pos += take
            remaining -= take
        return shares

    def write(self, name: str, data: bytes,
              stripe_count: int | None = None) -> PfsResult:
        """Append ``data`` to ``name`` (create on first write)."""
        if not data:
            raise StorageError("empty write")
        meta_ops = 0
        f = self._files.get(name)
        if f is None:
            count = self.default_stripe_count if stripe_count is None else stripe_count
            if not 1 <= count <= self.n_osts:
                raise StorageError(f"stripe_count must be in [1, {self.n_osts}]")
            f = _PfsFile(name, stripe_count=count)
            self._files[name] = f
            self._contents[name] = bytearray()
            meta_ops += 1  # create on the MDS
        shares = self._stripes(f, f.size, len(data))
        per_ost_time: list[float] = []
        total = IoStats()
        for ost_index, share in shares.items():
            queue = self.osts[ost_index % self.n_osts]
            offset = self._alloc[ost_index % self.n_osts]
            batch = queue.submit(
                [DiskRequest(OpKind.WRITE, offset, share)]
            )
            batch = batch.merge(queue.flush())  # PFS writes are durable
            self._alloc[ost_index % self.n_osts] += share
            per_ost_time.append(batch.busy_time)
            total = total.merge(batch)
        f.size += len(data)
        self._contents[name].extend(data)
        meta_ops += 1  # size update
        elapsed = self.metadata_op_s * meta_ops + (max(per_ost_time) if per_ost_time else 0.0)
        return PfsResult(elapsed_s=elapsed, io=total,
                         osts_touched=len(shares), metadata_ops=meta_ops)

    def read(self, name: str, offset: int = 0,
             nbytes: int | None = None) -> tuple[bytes, PfsResult]:
        """Read file content; returns (data, timing)."""
        f = self._files.get(name)
        if f is None:
            raise StorageError(f"no such file {name!r}")
        if nbytes is None:
            nbytes = f.size - offset
        if offset < 0 or offset + nbytes > f.size:
            raise StorageError("read range outside file")
        shares = self._stripes(f, offset, nbytes)
        per_ost_time: list[float] = []
        total = IoStats()
        for ost_index, share in shares.items():
            queue = self.osts[ost_index % self.n_osts]
            # OSTs stream their share from their object region.
            batch = queue.submit([DiskRequest(OpKind.READ, 0, share)])
            per_ost_time.append(batch.busy_time)
            total = total.merge(batch)
        data = bytes(self._contents[name][offset : offset + nbytes])
        elapsed = self.metadata_op_s + (max(per_ost_time) if per_ost_time else 0.0)
        return data, PfsResult(elapsed_s=elapsed, io=total,
                               osts_touched=len(shares), metadata_ops=1)

    # -- energy accounting ---------------------------------------------------------

    @property
    def idle_power_w(self) -> float:
        """Static draw of the storage subsystem (all OST spindles)."""
        return sum(q.device.spec.idle_w for q in self.osts)

    def reset(self) -> None:
        """Restore initial state (head position, caches, stats)."""
        for q in self.osts:
            q.device.reset()
            q.reset_stats()
        self._alloc = [0] * self.n_osts
        self._files.clear()
        self._contents.clear()
