"""Simulated OS storage stack.

Sits between the pipelines' file operations and the block-device models:

* :mod:`repro.system.iosched` — request-ordering policies (noop / SCAN
  elevator / deadline), the knob the paper's Section V.D "software-directed
  data reorganization" discussion turns.
* :mod:`repro.system.blockdev` — a block request queue binding a scheduler
  to a device model, accumulating the busy-time statistics the power model
  consumes.
* :mod:`repro.system.pagecache` — write-back page cache with the ``sync``
  and ``drop_caches`` semantics the paper exercises between phases.
* :mod:`repro.system.filesystem` — a small extent-based filesystem with
  pluggable on-disk layout policies.
"""

from repro.system.iosched import (
    DeadlineScheduler,
    IoScheduler,
    NoopScheduler,
    ScanScheduler,
)
from repro.system.blockdev import BlockQueue, IoStats
from repro.system.pagecache import CacheStats, PageCache
from repro.system.filesystem import FileSystem, FileHandle
from repro.system.pfs import ParallelFileSystem, PfsResult

__all__ = [
    "IoScheduler",
    "NoopScheduler",
    "ScanScheduler",
    "DeadlineScheduler",
    "BlockQueue",
    "IoStats",
    "PageCache",
    "CacheStats",
    "FileSystem",
    "FileHandle",
    "ParallelFileSystem",
    "PfsResult",
]
