"""Extent-based filesystem over the simulated storage stack.

Responsibilities:

* **Namespace + content**: files really hold their bytes (reads return what
  writes stored — the pipelines verify simulation data round-trips).
* **Allocation / layout**: a pluggable allocator maps file bytes onto
  device extents.  ``contiguous`` gives streaming I/O; ``fragmented``
  scatters extents across the device (an aged filesystem), which is the
  condition the paper's Section V.D data-reorganization discussion targets.
* **Journaling**: ``sync`` commits a small journal record before the data
  barrier, like ext4's ordered mode.

All operations return an :class:`FsResult` carrying CPU time and device
:class:`~repro.system.blockdev.IoStats` so callers can build trace spans.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import FileNotFound, MachineError, StorageError
from repro.machine.disk import DiskRequest, OpKind
from repro.rng import RngRegistry
from repro.system.blockdev import BlockQueue, IoStats
from repro.system.pagecache import CacheOp, PageCache
from repro.units import KiB, MiB


@dataclass(frozen=True)
class Extent:
    """One contiguous run of device bytes backing part of a file."""

    device_offset: int
    nbytes: int

    @property
    def end(self) -> int:
        """Exclusive end offset of this extent/request."""
        return self.device_offset + self.nbytes


@dataclass
class FileHandle:
    """Filesystem metadata for one file."""

    name: str
    extents: list[Extent] = field(default_factory=list)

    @property
    def size(self) -> int:
        """Size of the named file in bytes."""
        return sum(e.nbytes for e in self.extents)

    def map_range(self, offset: int, nbytes: int) -> list[Extent]:
        """Device extents covering file bytes [offset, offset+nbytes)."""
        if offset < 0 or nbytes < 0 or offset + nbytes > self.size:
            raise StorageError(
                f"range [{offset}, {offset + nbytes}) outside file "
                f"{self.name!r} of {self.size} bytes"
            )
        out: list[Extent] = []
        pos = 0
        remaining_start, remaining = offset, nbytes
        for extent in self.extents:
            if remaining <= 0:
                break
            ext_end = pos + extent.nbytes
            if remaining_start < ext_end:
                within = remaining_start - pos
                take = min(extent.nbytes - within, remaining)
                out.append(Extent(extent.device_offset + within, take))
                remaining_start += take
                remaining -= take
            pos = ext_end
        return out


@dataclass
class FsResult:
    """Outcome of a filesystem operation (timing + device stats)."""

    cpu_time: float = 0.0
    io: IoStats = field(default_factory=IoStats)

    @property
    def elapsed(self) -> float:
        """Total elapsed seconds (CPU + device time)."""
        return self.cpu_time + self.io.busy_time

    def absorb(self, op: CacheOp) -> None:
        """Fold a cache-operation outcome into this result."""
        self.cpu_time += op.cpu_time
        self.io = self.io.merge(op.io)


class FileSystem:
    """A small journaling filesystem on one block device.

    Parameters
    ----------
    queue:
        Block queue over the backing device.
    layout:
        ``"contiguous"`` allocates files one after another (fresh
        filesystem); ``"fragmented"`` splits every allocation into
        ``fragment_bytes`` extents scattered pseudo-randomly over the
        device (aged filesystem).
    cache:
        Optional page cache; when None, all I/O is direct.
    journal:
        Commit an 8 KiB journal record on every sync (ext-style ordered
        journaling).
    """

    JOURNAL_RECORD_BYTES = 8 * KiB

    def __init__(
        self,
        queue: BlockQueue,
        cache: PageCache | None = None,
        layout: str = "contiguous",
        fragment_bytes: int = 1 * MiB,
        journal: bool = True,
        rng: RngRegistry | None = None,
    ) -> None:
        if layout not in ("contiguous", "fragmented"):
            raise StorageError(f"unknown layout policy {layout!r}")
        if fragment_bytes <= 0:
            raise StorageError("fragment_bytes must be positive")
        self.queue = queue
        self.cache = cache
        self.layout = layout
        self.fragment_bytes = fragment_bytes
        self.journal = journal
        self._rng = (rng or RngRegistry()).get("fs-allocator")
        self._files: dict[str, FileHandle] = {}
        #: name -> list of immutable segments, one per append; consolidated
        #: lazily on read so write paths never re-copy file bodies.
        self._contents: dict[str, list[bytes]] = {}
        #: Journal lives in a reserved region at the front of the device.
        self._journal_offset = 0
        self._journal_region = 128 * MiB
        self._alloc_cursor = self._journal_region

    # -- namespace -----------------------------------------------------------------

    @property
    def files(self) -> tuple[str, ...]:
        """Names of all files, in creation order."""
        return tuple(self._files)

    def exists(self, name: str) -> bool:
        """True if a file of that name exists."""
        return name in self._files

    def handle(self, name: str) -> FileHandle:
        """Metadata handle for the named file."""
        try:
            return self._files[name]
        except KeyError:
            raise FileNotFound(name) from None

    def size(self, name: str) -> int:
        """Size of the named file in bytes."""
        return self.handle(name).size

    def delete(self, name: str) -> None:
        """Remove a file and its content."""
        self.handle(name)  # raises if absent
        del self._files[name]
        del self._contents[name]

    # -- allocation -------------------------------------------------------------------

    def _device_capacity(self) -> int:
        dev = self.queue.device
        cap = getattr(dev, "capacity_bytes", None)
        if cap is None:
            cap = dev.spec.capacity_bytes
        return cap

    def _allocate(self, nbytes: int) -> list[Extent]:
        capacity = self._device_capacity()
        if self._alloc_cursor + nbytes > capacity:
            raise StorageError("filesystem full")
        if self.layout == "contiguous":
            extent = Extent(self._alloc_cursor, nbytes)
            self._alloc_cursor += nbytes
            return [extent]
        # Fragmented: carve fragment-sized extents and scatter them.
        extents: list[Extent] = []
        remaining = nbytes
        usable = capacity - self._journal_region
        while remaining > 0:
            take = min(self.fragment_bytes, remaining)
            slot = int(self._rng.integers(0, max(1, (usable - take) // take)))
            extents.append(Extent(self._journal_region + slot * take, take))
            remaining -= take
        self._alloc_cursor += nbytes  # account usage even though scattered
        return extents

    # -- data path -------------------------------------------------------------------

    def write(self, name: str, data: bytes, sync: bool = False) -> FsResult:
        """Append ``data`` to ``name`` (creating it); optionally fsync."""
        result = FsResult()
        handle = self._files.get(name)
        if handle is None:
            handle = FileHandle(name)
            self._files[name] = handle
            self._contents[name] = []
        n_before = len(handle.extents)
        created = n_before == 0 and not self._contents[name]
        new_extents = self._allocate(len(data))
        handle.extents.extend(new_extents)
        self._contents[name].append(bytes(data))
        try:
            if self.cache is not None:
                for extent in new_extents:
                    result.absorb(self.cache.write(extent.device_offset, extent.nbytes))
            else:
                result.io = result.io.merge(self.queue.submit_arrays(
                    OpKind.WRITE,
                    [e.device_offset for e in new_extents],
                    [e.nbytes for e in new_extents],
                ))
            if sync:
                sync_result = self.fsync(name)
                result.cpu_time += sync_result.cpu_time
                result.io = result.io.merge(sync_result.io)
        except MachineError:
            # An injected fault escaped the retry layer: roll back the
            # un-durable append so a restarted pipeline sees only
            # committed content.  (The allocation cursor is not rewound;
            # leaked space is what a crashed append leaves behind.)
            del handle.extents[n_before:]
            self._contents[name].pop()
            if created:
                del self._files[name]
                del self._contents[name]
            raise
        return result

    def read(self, name: str, offset: int = 0, nbytes: int | None = None) -> tuple[bytes, FsResult]:
        """Read file content; returns (data, timing)."""
        handle = self.handle(name)
        if nbytes is None:
            nbytes = handle.size - offset
        result = FsResult()
        extents = handle.map_range(offset, nbytes)
        if self.cache is not None:
            for extent in extents:
                result.absorb(self.cache.read(extent.device_offset, extent.nbytes))
        elif extents:
            result.io = result.io.merge(self.queue.submit_arrays(
                OpKind.READ,
                [e.device_offset for e in extents],
                [e.nbytes for e in extents],
            ))
        data = self._content_range(name, offset, nbytes)
        return data, result

    def _content_range(self, name: str, offset: int, nbytes: int) -> bytes:
        """File bytes [offset, offset+nbytes), copying only when needed."""
        segments = self._contents[name]
        if len(segments) > 1:
            segments[:] = [b"".join(segments)]
        body = segments[0] if segments else b""
        if offset == 0 and nbytes == len(body):
            return body
        return bytes(memoryview(body)[offset : offset + nbytes])

    def fsync(self, name: str | None = None) -> FsResult:
        """Flush dirty data (and the journal commit record) to the platter."""
        result = FsResult()
        if self.journal:
            record = DiskRequest(
                OpKind.WRITE,
                self._journal_offset,
                self.JOURNAL_RECORD_BYTES,
            )
            self._journal_offset = (
                self._journal_offset + self.JOURNAL_RECORD_BYTES
            ) % self._journal_region
            result.io = result.io.merge(self.queue.submit([record], through_cache=False))
        if self.cache is not None:
            result.absorb(self.cache.sync())
        else:
            result.io = result.io.merge(self.queue.flush())
        return result

    def drop_caches(self) -> FsResult:
        """Evict clean page-cache pages (no-op without a cache)."""
        result = FsResult()
        if self.cache is not None:
            result.absorb(self.cache.drop_caches())
        return result

    def fragmentation(self, name: str) -> int:
        """Number of discontiguous extents backing ``name``."""
        handle = self.handle(name)
        if not handle.extents:
            return 0
        count = 1
        for prev, nxt in zip(handle.extents, handle.extents[1:]):
            if nxt.device_offset != prev.end:
                count += 1
        return count
