"""Write-back page cache with ``sync`` / ``drop_caches`` semantics.

The paper's methodology note is the reason this module exists:

    "In all these cases, we perform a sync operation and drop the caches
    between phases.  This ensures that the data does not get cached in
    memory and is actually written to the disk."

So the cache must model exactly those two controls:

* :meth:`PageCache.sync` — write every dirty page to the device (in LBA
  order, as the kernel's writeback does) and issue a device cache flush.
* :meth:`PageCache.drop_caches` — evict clean pages, so subsequent reads
  are cold and really hit the platter.

Reads and writes that hit the cache cost memory-copy time; misses cost
device time, reported separately so callers can split CPU/DRAM activity
from disk activity.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass, field

import numpy as np

from repro.errors import StorageError
from repro.machine.disk import OpKind
from repro.system.blockdev import BlockQueue, IoStats
from repro.units import KiB


@dataclass
class CacheStats:
    """Hit/miss accounting."""

    read_hits: int = 0
    read_misses: int = 0
    writes_buffered: int = 0
    pages_written_back: int = 0
    pages_dropped: int = 0

    @property
    def hit_rate(self) -> float:
        """Read hits as a fraction of all reads."""
        total = self.read_hits + self.read_misses
        return self.read_hits / total if total else 0.0


@dataclass
class CacheOp:
    """Outcome of one cache-level operation."""

    cpu_time: float = 0.0        # memory copies, syscall overhead
    io: IoStats = field(default_factory=IoStats)

    @property
    def elapsed(self) -> float:
        """Total elapsed seconds (CPU + device time)."""
        return self.cpu_time + self.io.busy_time


class PageCache:
    """LRU write-back cache over a :class:`~repro.system.blockdev.BlockQueue`.

    Pages are tracked by device-offset page index.  Dirty pages are pinned
    (drop_caches does not discard them, matching Linux) and are written
    back on :meth:`sync` or when the dirty set exceeds ``dirty_limit``.
    """

    def __init__(
        self,
        queue: BlockQueue,
        capacity_bytes: int = 56 << 30,  # node RAM minus app footprint
        page_bytes: int = 4 * KiB,
        memcpy_bw_bytes_per_s: float = 6e9,
        syscall_overhead_s: float = 2e-6,
        dirty_limit_fraction: float = 0.2,
    ) -> None:
        if capacity_bytes <= 0 or page_bytes <= 0:
            raise StorageError("cache capacity and page size must be positive")
        if not 0 < dirty_limit_fraction <= 1:
            raise StorageError("dirty_limit_fraction must be in (0, 1]")
        self.queue = queue
        self.capacity_pages = capacity_bytes // page_bytes
        self.page_bytes = page_bytes
        self.memcpy_bw = memcpy_bw_bytes_per_s
        self.syscall_overhead = syscall_overhead_s
        self.dirty_limit_pages = max(1, int(self.capacity_pages * dirty_limit_fraction))
        #: page index -> dirty flag, in LRU order (oldest first).
        self._pages: OrderedDict[int, bool] = OrderedDict()
        #: mirror of the dirty pages, so dirty-set queries and writeback
        #: don't scan every resident page.
        self._dirty: set[int] = set()
        self.stats = CacheStats()

    # -- helpers -----------------------------------------------------------------

    def _page_range(self, offset: int, nbytes: int) -> range:
        if offset < 0 or nbytes < 0:
            raise StorageError("offset and nbytes must be non-negative")
        first = offset // self.page_bytes
        last = (offset + max(nbytes, 1) - 1) // self.page_bytes
        return range(first, last + 1)

    def _touch(self, page: int, dirty: bool) -> None:
        pages = self._pages
        if page in pages:
            if dirty and not pages[page]:
                pages[page] = True
                self._dirty.add(page)
            pages.move_to_end(page)
        else:
            pages[page] = dirty
            if dirty:
                self._dirty.add(page)

    def _memcpy_time(self, nbytes: int) -> float:
        return self.syscall_overhead + nbytes / self.memcpy_bw

    @property
    def cached_pages(self) -> int:
        """Pages currently resident in the cache."""
        return len(self._pages)

    @property
    def dirty_pages(self) -> int:
        """Resident pages holding unwritten data."""
        return len(self._dirty)

    def is_cached(self, offset: int, nbytes: int) -> bool:
        """True if the whole byte range is resident."""
        return all(p in self._pages for p in self._page_range(offset, nbytes))

    # -- operations ----------------------------------------------------------------

    def write(self, offset: int, nbytes: int) -> CacheOp:
        """Buffered write: dirty the pages; write back only if over limit."""
        if nbytes == 0:
            return CacheOp()
        op = CacheOp(cpu_time=self._memcpy_time(nbytes))
        pages = self._page_range(offset, nbytes)
        if self._pages.keys().isdisjoint(pages):
            # Bulk path for fresh ranges (the common append-only write):
            # no LRU reordering to preserve, so insert in one shot.
            self._pages.update(dict.fromkeys(pages, True))
            self._dirty.update(pages)
        else:
            for page in pages:
                self._touch(page, dirty=True)
        self.stats.writes_buffered += 1
        self._evict_if_needed(op)
        if self.dirty_pages > self.dirty_limit_pages:
            self._writeback(op)
        return op

    def read(self, offset: int, nbytes: int) -> CacheOp:
        """Read: cache hits cost memory time, misses cost device time."""
        if nbytes == 0:
            return CacheOp()
        op = CacheOp(cpu_time=self._memcpy_time(nbytes))
        pages = self._page_range(offset, nbytes)
        resident = self._pages
        if resident.keys().isdisjoint(pages):
            # Bulk miss path (cold sweep): the page range is contiguous,
            # so it coalesces to one extent, and the fresh clean pages
            # insert in one shot with no LRU reordering to preserve.
            self.stats.read_misses += len(pages)
            op.io = op.io.merge(self.queue.submit_arrays(
                OpKind.READ,
                np.array([pages.start * self.page_bytes], dtype=np.int64),
                np.array([len(pages) * self.page_bytes], dtype=np.int64)))
            resident.update(dict.fromkeys(pages, False))
        else:
            miss_run = [p for p in pages if p not in resident]
            if not miss_run:
                # Bulk hit path (warm re-read): nothing dirties, so the
                # only state change is the LRU touch of every page.
                self.stats.read_hits += len(pages)
                move = resident.move_to_end
                for page in pages:
                    move(page)
            else:
                self.stats.read_hits += len(pages) - len(miss_run)
                self.stats.read_misses += len(miss_run)
                for page in pages:
                    if page in resident:
                        self._touch(page, dirty=False)
                run_offsets, run_sizes = self._coalesce(miss_run)
                op.io = op.io.merge(self.queue.submit_arrays(
                    OpKind.READ, run_offsets, run_sizes))
                for page in miss_run:
                    self._touch(page, dirty=False)
        self._evict_if_needed(op)
        return op

    def sync(self) -> CacheOp:
        """Write back all dirty pages and flush the device cache."""
        op = CacheOp()
        self._writeback(op)
        op.io = op.io.merge(self.queue.flush())
        return op

    def drop_caches(self) -> CacheOp:
        """Evict all clean pages (dirty pages survive, as on Linux)."""
        op = CacheOp()
        if not self._dirty:
            # Nothing pinned: the whole LRU empties in one shot (the
            # common sync-then-drop sequence between phases).
            n_clean = len(self._pages)
            self._pages.clear()
        else:
            clean = [p for p, d in self._pages.items() if not d]
            for page in clean:
                del self._pages[page]
            n_clean = len(clean)
        self.stats.pages_dropped += n_clean
        # Walking the LRU lists is cheap but not free.
        op.cpu_time = self.syscall_overhead + 1e-9 * n_clean
        return op

    # -- internals --------------------------------------------------------------

    def _coalesce(self, pages) -> tuple[np.ndarray, np.ndarray]:
        """Merge consecutive page indices into extent offset/size arrays."""
        arr = np.asarray(pages, dtype=np.int64)
        breaks = np.nonzero(np.diff(arr) != 1)[0] + 1
        run_starts = np.concatenate(([0], breaks))
        run_stops = np.concatenate((breaks, [arr.size]))  # exclusive
        offsets = arr[run_starts] * self.page_bytes
        sizes = (arr[run_stops - 1] - arr[run_starts] + 1) * self.page_bytes
        return offsets, sizes

    def _writeback(self, op: CacheOp) -> None:
        if not self._dirty:
            return
        dirty = sorted(self._dirty)
        run_offsets, run_sizes = self._coalesce(dirty)
        op.io = op.io.merge(
            self.queue.submit_arrays(OpKind.WRITE, run_offsets, run_sizes))
        for page in dirty:
            self._pages[page] = False
        self._dirty.clear()
        self.stats.pages_written_back += len(dirty)

    def _evict_if_needed(self, op: CacheOp) -> None:
        while len(self._pages) > self.capacity_pages:
            # Evict oldest clean page; if the oldest is dirty, write it back.
            for page, dirty in self._pages.items():
                if not dirty:
                    del self._pages[page]
                    self.stats.pages_dropped += 1
                    break
            else:
                self._writeback(op)
