"""Block request queue: scheduler + device, with busy-time accounting.

Every dispatch accumulates an :class:`IoStats` record decomposing where the
device's time went (transfer vs actuator travel vs rotational wait) and how
many bytes moved in each direction.  The pipelines and the fio workloads
convert those stats into :class:`~repro.trace.events.Activity` values — the
quantity the node power model prices.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

import numpy as np

from repro.machine.disk import DiskRequest, DiskResult, OpKind
from repro.system.iosched import IoScheduler, NoopScheduler
from repro.trace.events import Activity


@dataclass
class IoStats:
    """Accumulated device busy-time and traffic."""

    busy_time: float = 0.0
    arm_time: float = 0.0
    rotation_time: float = 0.0
    transfer_time: float = 0.0
    bytes_read: int = 0
    bytes_written: int = 0
    n_reads: int = 0
    n_writes: int = 0

    def add(self, result: DiskResult) -> None:
        """Accumulate one serviced (possibly batched) result's timing and traffic."""
        self.busy_time += result.service_time
        self.arm_time += result.arm_time
        self.rotation_time += result.rotation_time
        self.transfer_time += result.transfer_time
        if result.op is OpKind.READ:
            self.bytes_read += result.nbytes
            self.n_reads += result.n_ops
        elif result.cached:
            # Write accepted into the drive cache: the op happened, but the
            # bytes have not reached the platter — they are counted (and
            # their write-channel energy priced) when the cache drains.
            self.n_writes += result.n_ops
        else:
            self.bytes_written += result.nbytes
            self.n_writes += result.n_ops

    def add_drain(self, result: DiskResult) -> None:
        """Account a write-cache drain: platter bytes, but no new op."""
        self.busy_time += result.service_time
        self.arm_time += result.arm_time
        self.rotation_time += result.rotation_time
        self.transfer_time += result.transfer_time
        self.bytes_written += result.nbytes

    def merge(self, other: "IoStats") -> "IoStats":
        """Return a new IoStats summing this and ``other``."""
        out = IoStats()
        for name in vars(out):
            setattr(out, name, getattr(self, name) + getattr(other, name))
        return out

    def activity(self, wall_time: float | None = None) -> Activity:
        """Average disk activity over ``wall_time`` (defaults to busy time).

        A workload that keeps the disk busy the whole while uses the default;
        a pipeline stage where I/O is a slice of a longer span passes the
        span length to dilute the rates.
        """
        t = self.busy_time if wall_time is None else wall_time
        if t <= 0:
            return Activity()
        return Activity(
            disk_read_bytes_per_s=self.bytes_read / t,
            disk_write_bytes_per_s=self.bytes_written / t,
            disk_seek_duty=min(1.0, self.arm_time / t),
        )


class BlockQueue:
    """Batching front-end for a block device.

    Parameters
    ----------
    device:
        Any device model exposing ``service`` / ``submit_write`` /
        ``flush_cache`` (HDD, SSD, NVRAM, RAID array).
    scheduler:
        Request-ordering policy; defaults to FIFO.
    """

    def __init__(self, device, scheduler: IoScheduler | None = None) -> None:
        self.device = device
        self.scheduler = scheduler or NoopScheduler()
        self.stats = IoStats()
        self._head_pos = 0

    def submit(self, requests: Sequence[DiskRequest],
               through_cache: bool = True) -> IoStats:
        """Dispatch a batch in scheduler order; return the batch's stats.

        ``through_cache=True`` routes writes through the device's write
        cache (normal OS behaviour); ``False`` forces write-through
        (O_DIRECT/O_SYNC-style), which is what a ``sync``-per-write
        workload effectively sees.
        """
        batch = IoStats()
        for req in self.scheduler.order(requests, self._head_pos):
            if req.op is OpKind.WRITE and through_cache:
                result = self.device.submit_write(req)
            else:
                result = self.device.service(req)
            batch.add(result)
            self._head_pos = req.end
        self.stats = self.stats.merge(batch)
        return batch

    def submit_arrays(self, op: OpKind, offsets, sizes,
                      through_cache: bool = True) -> IoStats:
        """Batched dispatch: arrays of offsets/sizes, one device kernel call.

        Equivalent to :meth:`submit` over the same requests in FIFO order;
        a non-FIFO scheduler falls back to the scalar path so its ordering
        policy still applies.
        """
        offs = np.asarray(offsets, dtype=np.int64)
        lens = np.broadcast_to(np.asarray(sizes, dtype=np.int64), offs.shape)
        if not isinstance(self.scheduler, NoopScheduler):
            return self.submit(
                [DiskRequest(op, int(o), int(nb)) for o, nb in zip(offs, lens)],
                through_cache=through_cache,
            )
        batch = IoStats()
        if offs.size:
            if op is OpKind.WRITE and through_cache:
                batch.add(self.device.submit_write_batch(offs, lens))
            else:
                batch.add(self.device.service_batch(offs, lens, op))
            self._head_pos = int(offs[-1] + lens[-1])
        self.stats = self.stats.merge(batch)
        return batch

    def flush(self) -> IoStats:
        """Flush the device write cache (fsync barrier reaching the drive)."""
        batch = IoStats()
        batch.add_drain(self.device.flush_cache())
        self.stats = self.stats.merge(batch)
        return batch

    def reset_stats(self) -> None:
        """Zero the accumulated statistics."""
        self.stats = IoStats()
