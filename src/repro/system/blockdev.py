"""Block request queue: scheduler + device, with busy-time accounting.

Every dispatch accumulates an :class:`IoStats` record decomposing where the
device's time went (transfer vs actuator travel vs rotational wait) and how
many bytes moved in each direction.  The pipelines and the fio workloads
convert those stats into :class:`~repro.trace.events.Activity` values — the
quantity the node power model prices.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

import numpy as np

from repro.errors import FaultError, RetryExhaustedError
from repro.faults.retry import RetrySession
from repro.machine.disk import DiskRequest, DiskResult, OpKind
from repro.system.iosched import IoScheduler, NoopScheduler
from repro.trace.events import Activity


@dataclass
class IoStats:
    """Accumulated device busy-time and traffic."""

    busy_time: float = 0.0
    arm_time: float = 0.0
    rotation_time: float = 0.0
    transfer_time: float = 0.0
    bytes_read: int = 0
    bytes_written: int = 0
    n_reads: int = 0
    n_writes: int = 0
    #: Device time burned by failed attempts (timeout-capped) plus the
    #: backoff waits between retries.  Included in ``busy_time`` too: it
    #: is real elapsed time on the op path.
    fault_time: float = 0.0
    n_faults: int = 0
    n_retries: int = 0

    # gl: idempotent — an accumulator by design: every dispatch attempt
    # consumed real device time, so per-attempt accounting is the point.
    def add(self, result: DiskResult) -> None:
        """Accumulate one serviced (possibly batched) result's timing and traffic."""
        self.busy_time += result.service_time
        self.arm_time += result.arm_time
        self.rotation_time += result.rotation_time
        self.transfer_time += result.transfer_time
        if result.op is OpKind.READ:
            self.bytes_read += result.nbytes
            self.n_reads += result.n_ops
        elif result.cached:
            # Write accepted into the drive cache: the op happened, but the
            # bytes have not reached the platter — they are counted (and
            # their write-channel energy priced) when the cache drains.
            self.n_writes += result.n_ops
        else:
            self.bytes_written += result.nbytes
            self.n_writes += result.n_ops

    def add_fault(self, *, charge_s: float, retried: bool) -> None:
        """Account one failed attempt: device charge plus any backoff wait."""
        self.busy_time += charge_s
        self.fault_time += charge_s
        self.n_faults += 1
        if retried:
            self.n_retries += 1

    def add_drain(self, result: DiskResult) -> None:
        """Account a write-cache drain: platter bytes, but no new op."""
        self.busy_time += result.service_time
        self.arm_time += result.arm_time
        self.rotation_time += result.rotation_time
        self.transfer_time += result.transfer_time
        self.bytes_written += result.nbytes

    def merge(self, other: "IoStats") -> "IoStats":
        """Return a new IoStats summing this and ``other``."""
        # Spelled out field by field: merge sits on every cache/filesystem
        # operation, and reflecting over dataclass fields per call costs
        # more than the additions themselves.  ``test_iostats_merge_covers
        # _every_field`` pins this list to ``dataclasses.fields(IoStats)``.
        return IoStats(
            busy_time=self.busy_time + other.busy_time,
            arm_time=self.arm_time + other.arm_time,
            rotation_time=self.rotation_time + other.rotation_time,
            transfer_time=self.transfer_time + other.transfer_time,
            bytes_read=self.bytes_read + other.bytes_read,
            bytes_written=self.bytes_written + other.bytes_written,
            n_reads=self.n_reads + other.n_reads,
            n_writes=self.n_writes + other.n_writes,
            fault_time=self.fault_time + other.fault_time,
            n_faults=self.n_faults + other.n_faults,
            n_retries=self.n_retries + other.n_retries,
        )

    def activity(self, wall_time: float | None = None) -> Activity:
        """Average disk activity over ``wall_time`` (defaults to busy time).

        A workload that keeps the disk busy the whole while uses the default;
        a pipeline stage where I/O is a slice of a longer span passes the
        span length to dilute the rates.
        """
        t = self.busy_time if wall_time is None else wall_time
        if t <= 0:
            return Activity()
        return Activity(
            disk_read_bytes_per_s=self.bytes_read / t,
            disk_write_bytes_per_s=self.bytes_written / t,
            disk_seek_duty=min(1.0, self.arm_time / t),
        )


class BlockQueue:
    """Batching front-end for a block device.

    Parameters
    ----------
    device:
        Any device model exposing ``service`` / ``submit_write`` /
        ``flush_cache`` (HDD, SSD, NVRAM, RAID array).
    scheduler:
        Request-ordering policy; defaults to FIFO.
    retry:
        Optional :class:`~repro.faults.retry.RetrySession`.  When set,
        :class:`~repro.errors.FaultError` raised by the device is charged
        (timeout-capped) and the operation re-attempted with jittered
        exponential backoff, up to the policy's attempt budget; beyond it
        a :class:`~repro.errors.RetryExhaustedError` propagates.  Without
        a session, faults are charged once and re-raised.  Non-retryable
        faults (whole-device failure) always propagate.
    """

    def __init__(self, device, scheduler: IoScheduler | None = None,
                 retry: RetrySession | None = None) -> None:
        self.device = device
        self.scheduler = scheduler or NoopScheduler()
        self.retry = retry
        self.stats = IoStats()
        self._head_pos = 0

    # gl: idempotent — charges exactly one failed attempt per call; the
    # dispatch retry loop invoking it again is a new attempt, not a replay.
    def _account_fault(self, exc: FaultError, attempt: int,
                       batch: IoStats) -> None:
        """Charge one failed attempt; raise unless a retry is allowed."""
        session = self.retry
        if session is None or not exc.retryable:
            batch.add_fault(charge_s=exc.elapsed_s, retried=False)
            self.stats = self.stats.merge(batch)
            raise exc
        policy = session.policy
        charge = policy.charge_s(exc.elapsed_s)
        if attempt >= policy.max_attempts:
            batch.add_fault(charge_s=charge, retried=False)
            self.stats = self.stats.merge(batch)
            raise RetryExhaustedError(
                f"giving up after {attempt} attempts: {exc}"
            ) from exc
        batch.add_fault(charge_s=charge + session.backoff_s(attempt),
                        retried=True)

    def _dispatch(self, req: DiskRequest, through_cache: bool,
                  batch: IoStats) -> None:
        attempt = 0
        while True:
            try:
                if req.op is OpKind.WRITE and through_cache:
                    result = self.device.submit_write(req)
                else:
                    result = self.device.service(req)
            except FaultError as exc:
                attempt += 1
                self._account_fault(exc, attempt, batch)
                continue
            batch.add(result)
            return

    def submit(self, requests: Sequence[DiskRequest],
               through_cache: bool = True) -> IoStats:
        """Dispatch a batch in scheduler order; return the batch's stats.

        ``through_cache=True`` routes writes through the device's write
        cache (normal OS behaviour); ``False`` forces write-through
        (O_DIRECT/O_SYNC-style), which is what a ``sync``-per-write
        workload effectively sees.
        """
        batch = IoStats()
        for req in self.scheduler.order(requests, self._head_pos):
            self._dispatch(req, through_cache, batch)
            self._head_pos = req.end
        self.stats = self.stats.merge(batch)
        return batch

    def submit_arrays(self, op: OpKind, offsets, sizes,
                      through_cache: bool = True) -> IoStats:
        """Batched dispatch: arrays of offsets/sizes, one device kernel call.

        Equivalent to :meth:`submit` over the same requests in FIFO order;
        a non-FIFO scheduler falls back to the scalar path so its ordering
        policy still applies.
        """
        offs = np.asarray(offsets, dtype=np.int64)
        lens = np.broadcast_to(np.asarray(sizes, dtype=np.int64), offs.shape)
        if not isinstance(self.scheduler, NoopScheduler):
            return self.submit(
                [DiskRequest(op, int(o), int(nb)) for o, nb in zip(offs, lens)],
                through_cache=through_cache,
            )
        batch = IoStats()
        if offs.size:
            self._dispatch_arrays(op, offs, lens, through_cache, batch)
            self._head_pos = int(offs[-1] + lens[-1])
        self.stats = self.stats.merge(batch)
        return batch

    def _dispatch_arrays(self, op: OpKind, offs: np.ndarray, lens: np.ndarray,
                         through_cache: bool, batch: IoStats) -> None:
        """One batched kernel call, resuming past faults at the failed index."""
        start = 0
        attempt = 0
        last_failed = -1
        n = int(offs.size)
        while start < n:
            try:
                if op is OpKind.WRITE and through_cache:
                    result = self.device.submit_write_batch(offs[start:],
                                                            lens[start:])
                else:
                    result = self.device.service_batch(offs[start:],
                                                       lens[start:], op)
            except FaultError as exc:
                if isinstance(exc.prefix, DiskResult) and exc.prefix.n_ops:
                    batch.add(exc.prefix)
                failed = start + (exc.failed_index or 0)
                # The attempt counter tracks one request: it resets when
                # the fault moves to a different batch element.
                attempt = attempt + 1 if failed == last_failed else 1
                last_failed = failed
                self._account_fault(exc, attempt, batch)
                start = failed
                continue
            batch.add(result)
            return

    def flush(self) -> IoStats:
        """Flush the device write cache (fsync barrier reaching the drive)."""
        batch = IoStats()
        batch.add_drain(self.device.flush_cache())
        self.stats = self.stats.merge(batch)
        return batch

    def reset_stats(self) -> None:
        """Zero the accumulated statistics."""
        self.stats = IoStats()
