#!/usr/bin/env python3
"""Render the in-situ pipeline's actual output frames to real PNG files.

Everything in the reproduction is real computation: this example runs
the heat solver with a hot source, renders colormapped frames with
isocontours at every timestep exactly as the in-situ pipeline does, and
writes them to ``examples/out/`` so you can watch the heat plume evolve.
"""

import os

from repro.pipelines.base import make_solver
from repro.rng import RngRegistry
from repro.viz import annotate_frame, encode_apng, render_with_contours

OUT_DIR = os.path.join(os.path.dirname(os.path.abspath(__file__)), "out")


def main() -> None:
    os.makedirs(OUT_DIR, exist_ok=True)
    solver = make_solver(RngRegistry(2015))
    levels = (25.0, 35.0, 50.0)

    written = []
    movie_frames = []
    for timestep in range(1, 51):
        solver.step(1)
        if timestep % 5:
            continue
        frame = render_with_contours(
            solver.grid.data, levels=levels, colormap="heat",
            height=256, width=256,
        )
        lo, hi = solver.grid.minmax()
        annotate_frame(frame.image, "heat", vmin=lo, vmax=hi,
                       caption=f"T = {solver.time:.0f} S")
        path = os.path.join(OUT_DIR, f"heat{timestep:04d}.png")
        with open(path, "wb") as fh:
            fh.write(frame.image.to_png())
        written.append(path)
        movie_frames.append(frame.image.pixels.copy())
        print(f"t={solver.time:7.1f}s  T in [{lo:6.2f}, {hi:6.2f}] C  "
              f"{frame.contour_segments:4d} contour segments  -> {path}")

    movie = os.path.join(OUT_DIR, "heat.apng.png")
    with open(movie, "wb") as fh:
        fh.write(encode_apng(movie_frames, fps=4))
    print(f"\nwrote {len(written)} frames and an animation to {OUT_DIR}")


if __name__ == "__main__":
    main()
