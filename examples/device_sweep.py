#!/usr/bin/env python3
"""Future-work sweep: storage devices and the multi-node pipeline.

Explores the paper's Section VI agenda: how do the study's conclusions
change on SSDs, NVRAM, RAID arrays, and when visualization moves to a
staging node over the interconnect?
"""

from repro import InTransitPipeline, PipelineConfig, PipelineRunner, run_case_study
from repro.analysis import format_table
from repro.calibration import CASE_STUDIES
from repro.machine import HddModel, Node, NvramModel, RaidArray, RaidLevel, SsdModel
from repro.machine.specs import paper_testbed
from repro.workloads import FIO_JOBS, FioRunner


def device_table() -> None:
    spec = paper_testbed()
    devices = {
        "hdd (paper)": lambda: HddModel(spec.disk),
        "ssd": SsdModel,
        "nvram": NvramModel,
        "raid0 4x hdd": lambda: RaidArray(
            [HddModel(spec.disk) for _ in range(4)], RaidLevel.RAID0),
    }
    rows = []
    for name, factory in devices.items():
        runner = FioRunner(Node(spec, storage=factory()), seed=2015)
        seq = runner.run(FIO_JOBS["seq_read"])
        rand = runner.run(FIO_JOBS["rand_read"])
        rows.append([name, seq.elapsed_s, rand.elapsed_s,
                     seq.system_energy_j / 1000, rand.system_energy_j / 1000])
    print(format_table(
        ["Device", "seq read (s)", "rand read (s)", "seq (kJ)", "rand (kJ)"],
        rows, title="4 GiB reads across storage technologies",
    ))


def multinode_table() -> None:
    runner = PipelineRunner(seed=2015)
    outcome = run_case_study(1, runner)
    transit = runner.run(InTransitPipeline(PipelineConfig(case=CASE_STUDIES[1])))
    rows = [
        ["post-processing (1 node)", outcome.post.execution_time_s,
         outcome.post.energy_j / 1000],
        ["in-situ (1 node)", outcome.insitu.execution_time_s,
         outcome.insitu.energy_j / 1000],
        ["in-transit, compute node only", transit.execution_time_s,
         transit.energy_j / 1000],
        ["in-transit, compute + staging", transit.execution_time_s,
         transit.extra["total_energy_j"] / 1000],
    ]
    print(format_table(
        ["Pipeline", "time (s)", "energy (kJ)"], rows,
        title="Case study 1 with a staging node (in-transit)",
    ))


def main() -> None:
    device_table()
    print()
    multinode_table()
    print("\ntakeaways: flash removes the random-access energy penalty the "
          "paper's Sec V.D targets;\nshipping to a staging node helps the "
          "compute node but the pair must amortize the second static floor.")


if __name__ == "__main__":
    main()
