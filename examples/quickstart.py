#!/usr/bin/env python3
"""Quickstart: reproduce the paper's headline result in one page.

Runs the proxy heat-transfer application through both visualization
pipelines under the realistic I/O load (case study 1, I/O every
iteration) on the simulated Table I testbed, meters both runs the way
the paper did (Wattsup + RAPL at 1 Hz), and prints the greenness
comparison.

Expected outcome: the in-situ pipeline consumes ~43 % less energy at
~8 % higher average power, with no peak-power penalty.
"""

from repro import (
    GreennessReport,
    PipelineRunner,
    run_case_study,
)


def main() -> None:
    runner = PipelineRunner(seed=2015)
    print(f"system under test: {runner.node}")
    print()

    outcome = run_case_study(1, runner)

    for run in (outcome.post, outcome.insitu):
        print(GreennessReport.from_run(run).render())
        print()

    print("head-to-head (in-situ vs post-processing):")
    print(f"  energy savings      : {outcome.energy_savings_fraction:.1%}  (paper: 43%)")
    print(f"  time savings        : {outcome.time_savings_fraction:.1%}")
    print(f"  avg power increase  : {outcome.avg_power_increase_fraction:+.1%}  (paper: +8%)")
    print(f"  efficiency gain     : {outcome.efficiency_improvement_fraction:+.1%}  (paper: ~+72%)")

    assert outcome.post.verification.ok, "storage round-trip failed"
    print("\nevery dumped timestep round-tripped bit-exactly through the "
          "simulated storage stack.")


if __name__ == "__main__":
    main()
