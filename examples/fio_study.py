#!/usr/bin/env python3
"""Disk-pattern energy study: Table III, Section V.D, and the advisor.

Runs the four fio jobs (4 GiB sequential/random x read/write) against
the modeled 7200 rpm drive, reproduces the what-if analysis showing that
data reorganization recovers ~97 % of the random-I/O energy without
giving up exploratory analysis, and asks the future-work runtime advisor
what it would do for each scenario.
"""

from repro import FioRunner
from repro.analysis import format_table, whatif_reorganization
from repro.machine.specs import paper_testbed
from repro.runtime import DiskPowerModel, RuntimeAdvisor, WorkloadDescriptor
from repro.runtime.advisor import WorkloadProfile
from repro.units import KiB


def main() -> None:
    results = FioRunner(seed=2015).run_table3()

    order = ["seq_read", "rand_read", "seq_write", "rand_write"]
    print(format_table(
        ["Metric"] + [n.replace("_", " ") for n in order],
        [
            ["Execution time (s)"] + [results[n].elapsed_s for n in order],
            ["Full-system power (W)"] + [results[n].system_power_w for n in order],
            ["Disk dynamic power (W)"] + [results[n].disk_dynamic_power_w
                                          for n in order],
            ["Full-system energy (kJ)"] + [results[n].system_energy_j / 1000
                                           for n in order],
        ],
        title="Table III: fio tests, 4 GiB on the modeled 7200 rpm disk",
    ))
    print()

    report = whatif_reorganization(results)
    print("Sec V.D what-if:")
    print(f"  random-I/O post-processing costs {report.random_io_energy_j/1000:.1f} kJ"
          " (what in-situ would save)")
    print(f"  after software-directed data reorganization: "
          f"{report.reorg_residual_j/1000:.1f} kJ "
          f"({report.reorg_saves_fraction:.1%} recovered)")
    print(f"  the one-time rewrite ({report.reorg_overhead_j/1000:.1f} kJ) pays "
          f"for itself after {report.break_even_passes:.2f} analysis passes")
    print()

    advisor = RuntimeAdvisor(DiskPowerModel.from_spec(paper_testbed().disk))
    random_io = WorkloadDescriptor(120.0, 16 * KiB, 1.0, "random")
    for exploration in (False, True):
        rec = advisor.recommend(WorkloadProfile(
            random_io, io_time_fraction=0.6, needs_exploration=exploration))
        need = "needs" if exploration else "does not need"
        print(f"advisor (app {need} exploration): {rec.technique.value}")
        print(f"  est. savings {rec.estimated_savings_fraction:.0%} — {rec.rationale}")


if __name__ == "__main__":
    main()
