#!/usr/bin/env python3
"""The middle ground: everything between post-processing and in-situ.

The paper frames the choice as binary — keep all the data (and pay for
it) or visualize in situ (and lose exploration).  The literature it
cites offers middle points, all implemented here:

* **sampling hybrid** [21]: in-situ rendering plus decimated dumps,
  with the reconstruction error measured per run;
* **Cinema image database** [12]: render a whole parameter space per
  timestep instead of keeping raw data;
* **decomposed multi-node in-situ**: the same physics strong-scaled over
  a cluster, with halo-exchange and compositing traffic priced;
* **power-capped runs**: what each pipeline costs when the node must
  stay under a power budget.
"""

from repro import PipelineRunner
from repro.analysis import fit_under_cap, format_table
from repro.calibration import CASE_STUDIES
from repro.machine import Node
from repro.pipelines import (
    CinemaPipeline,
    ClusterInSituPipeline,
    InSituPipeline,
    PipelineConfig,
    PostProcessingPipeline,
    SamplingInSituPipeline,
)
from repro.pipelines.cinema import default_spec
from repro.power import MeterRig
from repro.rng import RngRegistry


def main() -> None:
    runner = PipelineRunner(seed=2015)
    config = PipelineConfig(case=CASE_STUDIES[1])

    post = runner.run(PostProcessingPipeline(config))
    insitu = runner.run(InSituPipeline(config))
    sampled = runner.run(SamplingInSituPipeline(config, sampling_factor=4))
    cinema = runner.run(CinemaPipeline(config, default_spec(4)))

    rows = [
        ["post-processing (all raw data)", post.execution_time_s,
         post.energy_j / 1000, "full re-analysis"],
        ["sampling hybrid 1/4", sampled.execution_time_s,
         sampled.energy_j / 1000,
         f"coarse data, NRMSE {sampled.extra['mean_nrmse']:.3f}"],
        [f"cinema x{cinema.extra['n_combinations']} views",
         cinema.execution_time_s, cinema.energy_j / 1000,
         f"{cinema.extra['database_files']} browsable images"],
        ["pure in-situ", insitu.execution_time_s, insitu.energy_j / 1000,
         "live frames only"],
    ]
    print(format_table(
        ["Pipeline", "time (s)", "energy (kJ)", "what exploration remains"],
        rows, title="The exploration/energy spectrum (case study 1)",
    ))
    print()

    # Strong scaling of the decomposed in-situ pipeline.
    rows = []
    for n in (1, 4, 9):
        run = runner.run(ClusterInSituPipeline(config, n_nodes=n))
        rows.append([f"{n} nodes {run.extra['mesh']}", run.execution_time_s,
                     run.extra["total_energy_j"] / 1000])
    print(format_table(
        ["Cluster", "time (s)", "total energy (kJ)"],
        rows, title="Decomposed in-situ strong scaling (same physics, bit-exact)",
    ))
    print()

    # Power-capped runs.
    node = Node()
    rows = []
    for cap in (150.0, 125.0):
        for label, run in (("post", post), ("in-situ", insitu)):
            report = fit_under_cap(run.timeline, node, cap)
            rig = MeterRig(node, jitter=0, rng=RngRegistry(19))
            energy = rig.sample(report.capped_timeline).energy()
            rows.append([f"{label} @ {cap:.0f} W cap", report.slowdown,
                         energy / 1000])
    print(format_table(
        ["Run", "slowdown", "energy (kJ)"],
        rows, title="Under a node power cap (DVFS to comply)",
        float_fmt="{:.2f}",
    ))


if __name__ == "__main__":
    main()
