#!/usr/bin/env python3
"""The full evaluation: all three case studies, Figs 7-11 + Section V.C.

Sweeps the paper's three I/O cadences (every iteration / every 2nd /
every 8th), compares the pipelines on every greenness metric, and
decomposes the savings into static (idle-time) and dynamic (data
movement) components — the paper's most surprising finding is that ~91 %
of the savings are static.
"""

from repro import PipelineRunner, compare_cases, run_all_cases
from repro.analysis import format_table
from repro.analysis.comparison import normalized_efficiency
from repro.analysis.savings import analyze_savings


def main() -> None:
    runner = PipelineRunner(seed=2015)
    outcomes = run_all_cases(runner)
    rows = compare_cases(outcomes)

    print(format_table(
        ["", "T post (s)", "T in-situ (s)", "P post (W)", "P in-situ (W)",
         "E post (kJ)", "E in-situ (kJ)"],
        [[f"case {r.case_index}", r.time_post_s, r.time_insitu_s,
          r.avg_power_post_w, r.avg_power_insitu_w,
          r.energy_post_j / 1000, r.energy_insitu_j / 1000] for r in rows],
        title="Figs 7-10: pipeline comparison",
    ))
    print()

    print(format_table(
        ["", "time -%", "avg power +%", "peak power d%", "energy -%",
         "efficiency +%"],
        [[f"case {r.case_index}", r.time_reduction_pct,
          r.avg_power_increase_pct, r.peak_power_delta_pct,
          r.energy_savings_pct, r.efficiency_improvement_pct] for r in rows],
        title="Derived percentages (paper: energy -43/-30/-18%, power +8/+5/+3%)",
    ))
    print()

    norm = normalized_efficiency(rows)
    print(format_table(
        ["", "post (norm.)", "in-situ (norm.)"],
        [[f"case {idx}", post, insitu] for idx, (post, insitu) in norm.items()],
        title="Fig 11: normalized energy efficiency", float_fmt="{:.2f}",
    ))
    print()

    print(format_table(
        ["", "total kJ", "static kJ", "dynamic kJ", "static %"],
        [
            [f"case {idx}",
             a.breakdown.total_savings_j / 1000,
             a.breakdown.static_savings_j / 1000,
             a.breakdown.dynamic_savings_j / 1000,
             100 * a.breakdown.static_fraction]
            for idx, a in (
                (idx, analyze_savings(outcome, runner.node))
                for idx, outcome in outcomes.items()
            )
        ],
        title="Sec V.C: savings breakdown (paper: 91% static for case 1)",
        float_fmt="{:.2f}",
    ))


if __name__ == "__main__":
    main()
